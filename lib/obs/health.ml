(* Health monitor: a Series set and an Alert engine ticked together.

   [watch_counter]/[watch_gauge] resolve metric handles against the
   current Registry at watch time, so a monitor installed at process
   start observes the same handles every layer later increments. *)

type monitor = {
  set : Series.set;
  engine : Alert.engine;
  mutable last_tick : float;
}

let create ?capacity ?max_events () =
  let set = Series.create_set ?capacity () in
  { set; engine = Alert.create ?max_events set; last_tick = Float.nan }

let set m = m.set
let engine m = m.engine

let watch_fn m ?capacity name f = Series.watch m.set ?capacity name f

let watch_counter m ?capacity ?(labels = []) name =
  Series.watch_counter m.set ?capacity
    (Series.labelled_name name labels)
    (Registry.counter ~labels name)

let watch_gauge m ?capacity ?(labels = []) name =
  Series.watch_gauge m.set ?capacity
    (Series.labelled_name name labels)
    (Registry.gauge ~labels name)

let add_rule m rule = Alert.add_rule m.engine rule

let tick m ~now =
  Series.tick m.set ~now;
  Alert.evaluate m.engine ~now;
  m.last_tick <- now

(* The standard pipeline monitor: QBER (eavesdropper alarm), delivery
   SLO, stabilization drift, plus throughput series for the report.
   Per-edge pool watches depend on a concrete relay topology, so
   callers that have one add them via [Alert.pool_below_watermark] and
   [watch_gauge ~labels:[("edge", ...)] "net_relay_pool_bits"]. *)
let default ?budget ?slo_objective ?capacity () =
  let m = create ?capacity () in
  ignore (watch_counter m "protocol_errors_corrected_total");
  ignore (watch_counter m "protocol_sifted_bits_total");
  ignore (watch_counter m "protocol_distilled_bits_total");
  ignore
    (watch_counter m "net_scheduler_requests_total"
       ~labels:[ ("result", "delivered") ]);
  ignore (watch_counter m "net_scheduler_submitted_total");
  ignore (watch_gauge m "photonics_stabilization_phase_error_rad");
  ignore (watch_gauge m "ipsec_key_pool_bits" ~labels:[ ("pool", "a") ]);
  ignore (watch_gauge m "ipsec_key_pool_bits" ~labels:[ ("pool", "b") ]);
  add_rule m (Alert.qber_above_budget ?budget ());
  add_rule m (Alert.delivery_slo_burn ?objective:slo_objective ());
  add_rule m (Alert.stabilization_drift ());
  m

let pp_report ?(top = 12) m ~now ppf =
  let firing = Alert.firing m.engine in
  Format.fprintf ppf "== health @@ t=%.1fs ==@." now;
  (* alerts *)
  (if firing = [] then
     Format.fprintf ppf "alerts: all clear (%d rules ok)@."
       (List.length (Alert.rules m.engine))
   else begin
     Format.fprintf ppf "alerts: %d FIRING@." (List.length firing);
     List.iter
       (fun (r : Alert.rule) ->
         let since =
           match Alert.state m.engine r.Alert.name with
           | Some (Alert.Firing since) -> since
           | _ -> now
         in
         let value =
           match Alert.last_value m.engine r.Alert.name with
           | Some v -> Printf.sprintf "%.4g" v
           | None -> "-"
         in
         Format.fprintf ppf "  [%s] %-24s since t=%.1fs value=%s  %s@."
           (Alert.severity_label r.Alert.severity)
           r.Alert.name since value r.Alert.message)
       firing
   end);
  (* SLO attainment per burn-rate rule *)
  List.iter
    (fun (r : Alert.rule) ->
      match r.Alert.kind with
      | Alert.Burn_rate { objective; _ } -> (
          match Alert.slo_attainment m.engine r.Alert.name with
          | Some a ->
              Format.fprintf ppf "slo %s: attainment %.2f%% (objective %.0f%%)@."
                r.Alert.name (100.0 *. a) (100.0 *. objective)
          | None ->
              Format.fprintf ppf "slo %s: no traffic yet@." r.Alert.name)
      | _ -> ())
    (Alert.rules m.engine);
  (* top series: last value + short-window rate *)
  let series = Series.all m.set in
  let shown = List.filteri (fun i _ -> i < top) series in
  Format.fprintf ppf "series (%d of %d):@." (List.length shown)
    (List.length series);
  List.iter
    (fun s ->
      match Series.last s with
      | None -> Format.fprintf ppf "  %-56s (no samples)@." (Series.name s)
      | Some (_, v) ->
          Format.fprintf ppf "  %-56s last=%-12s rate=%.4g/s@." (Series.name s)
            (Export.format_float v)
            (Series.rate s ~seconds:60.0))
    shown;
  (* recent transitions *)
  let events = Alert.log m.engine in
  let recent =
    let n = List.length events in
    List.filteri (fun i _ -> i >= n - 8) events
  in
  if recent <> [] then begin
    Format.fprintf ppf "recent transitions:@.";
    List.iter
      (fun (e : Alert.event) ->
        Format.fprintf ppf "  t=%-8.1f %-9s %s (value %.4g)@." e.Alert.at
          (match e.Alert.transition with
          | Alert.Fired -> "FIRED"
          | Alert.Resolved -> "resolved")
          e.Alert.rule e.Alert.value)
      recent
  end

let print_report ?top m ~now = pp_report ?top m ~now Format.std_formatter
