(** Monotone integer counter.

    Domain-safe: increments are atomic, so counters shared across the
    multi-domain photonics fast path never lose updates. *)

type t

val make : unit -> t
(** Prefer {!Registry.counter}, which names and deduplicates. *)

val incr : t -> unit

val add : t -> int -> unit
(** @raise Invalid_argument on a negative increment, enabled or not. *)

val value : t -> int

val reset : t -> unit
(** Test helper; resets regardless of the {!Control} switch. *)
