(* One process-wide switch gates every metric mutation and span clock
   read, so a disabled registry costs a single branch per call site —
   the bench's "uninstrumented" baseline. *)

let flag = ref true
let set_enabled b = flag := b
let enabled () = !flag
