module Stats = Qkd_util.Stats

(* Fixed-capacity ring buffer of (time, value) samples.  [head] is the
   next write slot; the logical order is oldest-first.  Pushes are
   gated on the Control switch like every other metric mutation, so a
   disabled monitor costs one branch per tick. *)
type t = {
  name : string;
  capacity : int;
  times : float array;
  values : float array;
  mutable len : int;
  mutable head : int;
}

let create ?(capacity = 512) name =
  if capacity <= 0 then invalid_arg "Series.create: capacity must be positive";
  {
    name;
    capacity;
    times = Array.make capacity 0.0;
    values = Array.make capacity 0.0;
    len = 0;
    head = 0;
  }

let name s = s.name
let capacity s = s.capacity
let length s = s.len

let push s ~t v =
  if Control.enabled () then begin
    s.times.(s.head) <- t;
    s.values.(s.head) <- v;
    s.head <- (s.head + 1) mod s.capacity;
    if s.len < s.capacity then s.len <- s.len + 1
  end

(* i = 0 is the oldest retained sample. *)
let nth s i =
  if i < 0 || i >= s.len then invalid_arg "Series.nth: index out of range";
  let idx = (s.head - s.len + i + (2 * s.capacity)) mod s.capacity in
  (s.times.(idx), s.values.(idx))

let samples s = Array.init s.len (nth s)

(* Replace the retained contents with [samples] (oldest first) — the
   series half of a checkpoint restore.  Deliberately not gated on
   Control: restore is state surgery, not metric mutation.  The ring
   is rebuilt from slot 0; logical reads and future pushes behave
   identically whatever the donor ring's head offset was. *)
let restore s samples =
  let n = Array.length samples in
  if n > s.capacity then
    invalid_arg "Series.restore: more samples than capacity";
  Array.iteri
    (fun i (t, v) ->
      s.times.(i) <- t;
      s.values.(i) <- v)
    samples;
  s.len <- n;
  s.head <- n mod s.capacity
let last s = if s.len = 0 then None else Some (nth s (s.len - 1))

(* All samples no older than [seconds] before the newest one, oldest
   first.  Sample times are assumed non-decreasing (the tick clock). *)
let window s ~seconds =
  if s.len = 0 then [||]
  else begin
    let t_last, _ = nth s (s.len - 1) in
    let cutoff = t_last -. seconds in
    let first = ref 0 in
    while !first < s.len - 1 && fst (nth s !first) < cutoff do
      incr first
    done;
    Array.init (s.len - !first) (fun i -> nth s (!first + i))
  end

let windowed_mean s ~seconds =
  let w = window s ~seconds in
  if Array.length w = 0 then 0.0 else Stats.mean (Array.map snd w)

(* Increase of a cumulative series across the window: newest minus
   oldest retained value.  Meaningful for counter-backed series. *)
let delta s ~seconds =
  let w = window s ~seconds in
  if Array.length w < 2 then 0.0
  else snd w.(Array.length w - 1) -. snd w.(0)

let rate s ~seconds =
  let w = window s ~seconds in
  if Array.length w < 2 then 0.0
  else begin
    let t0, v0 = w.(0) and t1, v1 = w.(Array.length w - 1) in
    if t1 <= t0 then 0.0 else (v1 -. v0) /. (t1 -. t0)
  end

let ewma s ~alpha =
  if alpha <= 0.0 || alpha > 1.0 then invalid_arg "Series.ewma: alpha in (0, 1]";
  if s.len = 0 then 0.0
  else begin
    let acc = ref (snd (nth s 0)) in
    for i = 1 to s.len - 1 do
      acc := (alpha *. snd (nth s i)) +. ((1.0 -. alpha) *. !acc)
    done;
    !acc
  end

(* Windowed ratio of two cumulative series sampled on the same ticks:
   Δnum / Δden, None until both deltas are defined and Δden > 0. *)
let ratio ~num ~den ~seconds =
  let dn = delta num ~seconds and dd = delta den ~seconds in
  if dd <= 0.0 then None else Some (dn /. dd)

(* Wilson interval on the windowed ratio, treating Δnum of Δden as k
   successes of n binomial trials — the QBER-style estimate. *)
let wilson_ratio_ci ~num ~den ~seconds ~z =
  let dn = delta num ~seconds and dd = delta den ~seconds in
  let n = int_of_float (Float.round dd) in
  if n <= 0 then None
  else begin
    let k = max 0 (min n (int_of_float (Float.round dn))) in
    Some (Stats.binomial_ci ~k ~n ~z)
  end

(* -- sampled sets: bind series to metric sources, advance on ticks -- *)

type source = unit -> float
type watched = { series : t; source : source }

type set = {
  mutable watched : watched list;  (** newest first *)
  default_capacity : int;
}

let create_set ?(capacity = 512) () =
  if capacity <= 0 then invalid_arg "Series.create_set: capacity must be positive";
  { watched = []; default_capacity = capacity }

(* Canonical series name for a labelled metric, matching the
   exporter's [name{k="v"}] rendering (labels sorted by key). *)
let labelled_name metric_name labels =
  match labels with
  | [] -> metric_name
  | labels ->
      let sorted = List.sort (fun (a, _) (b, _) -> compare a b) labels in
      metric_name ^ "{"
      ^ String.concat ","
          (List.map (fun (k, v) -> Printf.sprintf "%s=%S" k v) sorted)
      ^ "}"

let find set n = List.find_opt (fun w -> w.series.name = n) set.watched

let watch set ?capacity n source =
  match find set n with
  | Some w -> w.series
  | None ->
      let capacity = Option.value capacity ~default:set.default_capacity in
      let s = create ~capacity n in
      set.watched <- { series = s; source } :: set.watched;
      s

let watch_counter set ?capacity n c =
  watch set ?capacity n (fun () -> float_of_int (Counter.value c))

let watch_gauge set ?capacity n g = watch set ?capacity n (fun () -> Gauge.value g)

let tick set ~now =
  List.iter (fun w -> push w.series ~t:now (w.source ())) (List.rev set.watched)

let find set n = Option.map (fun w -> w.series) (find set n)
let all set = List.rev_map (fun w -> w.series) set.watched
