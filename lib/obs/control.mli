(** Global instrumentation switch.

    When disabled, counter/gauge/histogram mutations and span timing
    become no-ops (metric {i creation} and reads still work).  The
    bench uses this to measure instrumentation overhead against a true
    baseline. *)

val set_enabled : bool -> unit
val enabled : unit -> bool
