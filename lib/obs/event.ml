(* The wide event: one canonical record per unit of work — an engine
   round, a pipeline stage, a KMS request resolution, a scheduler
   delivery attempt, a (sampled) ESP batch, a campaign step.  Metrics
   aggregate these away; the flight recorder keeps the last N of them
   verbatim so a post-mortem can reconstruct the seconds before an
   alarm rather than just the counter totals after it.

   The schema is deliberately flat and Marshal-friendly (no closures,
   no custom blocks) so dumps survive the CRC-framed Checkpoint idiom.
   Fields a source doesn't use take cheap neutral defaults — the empty
   string, 0, nan — rather than options, keeping construction
   allocation-light on hot paths. *)

type source = Round | Stage | Kms | Sched | Esp | Mark

type t = {
  seq : int;  (** global commit order across all rings *)
  source : source;
  id : int;  (** per-source id: round number, request id, batch number *)
  at_s : float;  (** simulated seconds; 0.0 = no simulated clock *)
  tenant : string;
  qos : string;
  trace : int;  (** causal {!Trace.id}; 0 = none *)
  stage_s : float array;  (** per-stage wall latencies, source-defined *)
  qber : float;  (** nan = not applicable *)
  bits : int;
  verdict : string;
  labels : (string * string) list;
}

let source_label = function
  | Round -> "round"
  | Stage -> "stage"
  | Kms -> "kms"
  | Sched -> "sched"
  | Esp -> "esp"
  | Mark -> "mark"

let source_of_label = function
  | "round" -> Some Round
  | "stage" -> Some Stage
  | "kms" -> Some Kms
  | "sched" -> Some Sched
  | "esp" -> Some Esp
  | "mark" -> Some Mark
  | _ -> None

let empty =
  {
    seq = 0;
    source = Mark;
    id = 0;
    at_s = 0.0;
    tenant = "";
    qos = "";
    trace = 0;
    stage_s = [||];
    qber = Float.nan;
    bits = 0;
    verdict = "";
    labels = [];
  }

let make ?(at_s = 0.0) ?(tenant = "") ?(qos = "") ?(trace = 0)
    ?(stage_s = [||]) ?(qber = Float.nan) ?(bits = 0) ?(verdict = "ok")
    ?(labels = []) ~source ~id () =
  { seq = 0; source; id; at_s; tenant; qos; trace; stage_s; qber; bits;
    verdict; labels }

let latency_s t = Array.fold_left ( +. ) 0.0 t.stage_s

let pp ppf t =
  Format.fprintf ppf "#%d %s id=%d at=%.3f" t.seq (source_label t.source) t.id
    t.at_s;
  if t.tenant <> "" then Format.fprintf ppf " tenant=%s" t.tenant;
  if t.qos <> "" then Format.fprintf ppf " qos=%s" t.qos;
  if t.trace <> 0 then Format.fprintf ppf " trace=%d" t.trace;
  if not (Float.is_nan t.qber) then Format.fprintf ppf " qber=%.4f" t.qber;
  if t.bits <> 0 then Format.fprintf ppf " bits=%d" t.bits;
  if Array.length t.stage_s > 0 then
    Format.fprintf ppf " latency=%.6fs" (latency_s t);
  Format.fprintf ppf " verdict=%s" t.verdict;
  List.iter (fun (k, v) -> Format.fprintf ppf " %s=%s" k v) t.labels
