type t = {
  upper_bounds : float array;  (** strictly increasing, finite *)
  counts : int array;  (** length = bounds + 1; last slot is the +Inf overflow *)
  mutable sum : float;
  mutable count : int;
  (* Lazily allocated on the first [record_exemplar]: histograms that
     never record witnesses pay nothing and export identically to
     before exemplars existed. *)
  mutable exemplars : Exemplar.t option array;
}

(* Decade-ish bucket ladders.  [default_time_buckets] spans microsecond
   CPU spans to multi-second reconciliations; [default_sim_buckets]
   spans simulated link/round durations. *)
let default_time_buckets =
  [| 1e-6; 1e-5; 1e-4; 1e-3; 1e-2; 0.1; 0.25; 0.5; 1.0; 2.5; 5.0; 10.0 |]

let default_sim_buckets =
  [| 1e-3; 1e-2; 0.1; 0.5; 1.0; 5.0; 10.0; 60.0; 300.0 |]

let ratio_buckets =
  [| 0.01; 0.02; 0.03; 0.04; 0.05; 0.06; 0.08; 0.10; 0.12; 0.15; 0.25; 0.5 |]

(* Roughly logarithmic 1..1M, for bit counts and rates. *)
let size_buckets =
  [| 1.0; 10.0; 100.0; 500.0; 1_000.0; 5_000.0; 10_000.0; 50_000.0;
     100_000.0; 1_000_000.0 |]

let validate_bounds bounds =
  if Array.length bounds = 0 then
    invalid_arg "Histogram.make: at least one bucket bound";
  Array.iter
    (fun b ->
      if not (Float.is_finite b) then
        invalid_arg "Histogram.make: bounds must be finite")
    bounds;
  for i = 1 to Array.length bounds - 1 do
    if bounds.(i) <= bounds.(i - 1) then
      invalid_arg "Histogram.make: bounds must be strictly increasing"
  done

let make ~buckets =
  validate_bounds buckets;
  {
    upper_bounds = Array.copy buckets;
    counts = Array.make (Array.length buckets + 1) 0;
    sum = 0.0;
    count = 0;
    exemplars = [||];
  }

let bucket_index t v =
  let n = Array.length t.upper_bounds in
  let i = ref 0 in
  while !i < n && v > t.upper_bounds.(!i) do
    incr i
  done;
  !i

let observe t v =
  if Control.enabled () then begin
    let i = bucket_index t v in
    t.counts.(i) <- t.counts.(i) + 1;
    t.sum <- t.sum +. v;
    t.count <- t.count + 1
  end

let record_exemplar t ?(event_id = 0) ?(trace_id = 0) v =
  if Control.enabled () then begin
    if Array.length t.exemplars = 0 then
      t.exemplars <- Array.make (Array.length t.counts) None;
    t.exemplars.(bucket_index t v) <-
      Some (Exemplar.make ~event_id ~trace_id v)
  end

let observe_ex t ?event_id ?trace_id v =
  observe t v;
  record_exemplar t ?event_id ?trace_id v

let exemplar t i =
  if i < 0 || i >= Array.length t.counts then None
  else if Array.length t.exemplars = 0 then None
  else t.exemplars.(i)

let count t = t.count
let sum t = t.sum
let mean t = if t.count = 0 then 0.0 else t.sum /. float_of_int t.count
let upper_bounds t = Array.copy t.upper_bounds

let bucket_counts t =
  (* per-bucket (not cumulative); the final pair is the +Inf overflow *)
  Array.to_list
    (Array.mapi
       (fun i c ->
         let bound =
           if i < Array.length t.upper_bounds then t.upper_bounds.(i)
           else infinity
         in
         (bound, c))
       t.counts)

let cumulative t =
  let acc = ref 0 in
  List.map
    (fun (bound, c) ->
      acc := !acc + c;
      (bound, !acc))
    (bucket_counts t)

(* Prometheus-style bucket quantile: find the bucket holding the
   rank-[q * count] observation and linearly interpolate inside it.
   The first bucket interpolates from 0 (durations/sizes are
   non-negative here); ranks landing in the +Inf overflow clamp to the
   last finite bound — the histogram cannot know more.  NaN on an
   empty histogram or a NaN [q], so report paths can distinguish "no
   data" from a legitimate 0. *)
let quantile t q =
  if t.count = 0 || Float.is_nan q then Float.nan
  else begin
    let q = Float.max 0.0 (Float.min 1.0 q) in
    let n = Array.length t.upper_bounds in
    let rank = Float.max 1e-12 (q *. float_of_int t.count) in
    let i = ref 0 and cum = ref t.counts.(0) in
    while float_of_int !cum < rank && !i < n do
      incr i;
      cum := !cum + t.counts.(!i)
    done;
    if !i >= n then t.upper_bounds.(n - 1)
    else begin
      let lower = if !i = 0 then 0.0 else t.upper_bounds.(!i - 1) in
      let upper = t.upper_bounds.(!i) in
      let in_bucket = t.counts.(!i) in
      let below = !cum - in_bucket in
      if in_bucket = 0 then upper
      else
        lower
        +. (upper -. lower)
           *. ((rank -. float_of_int below) /. float_of_int in_bucket)
    end
  end
