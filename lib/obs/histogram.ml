type t = {
  upper_bounds : float array;  (** strictly increasing, finite *)
  counts : int array;  (** length = bounds + 1; last slot is the +Inf overflow *)
  mutable sum : float;
  mutable count : int;
}

(* Decade-ish bucket ladders.  [default_time_buckets] spans microsecond
   CPU spans to multi-second reconciliations; [default_sim_buckets]
   spans simulated link/round durations. *)
let default_time_buckets =
  [| 1e-6; 1e-5; 1e-4; 1e-3; 1e-2; 0.1; 0.25; 0.5; 1.0; 2.5; 5.0; 10.0 |]

let default_sim_buckets =
  [| 1e-3; 1e-2; 0.1; 0.5; 1.0; 5.0; 10.0; 60.0; 300.0 |]

let ratio_buckets =
  [| 0.01; 0.02; 0.03; 0.04; 0.05; 0.06; 0.08; 0.10; 0.12; 0.15; 0.25; 0.5 |]

(* Roughly logarithmic 1..1M, for bit counts and rates. *)
let size_buckets =
  [| 1.0; 10.0; 100.0; 500.0; 1_000.0; 5_000.0; 10_000.0; 50_000.0;
     100_000.0; 1_000_000.0 |]

let validate_bounds bounds =
  if Array.length bounds = 0 then
    invalid_arg "Histogram.make: at least one bucket bound";
  Array.iter
    (fun b ->
      if not (Float.is_finite b) then
        invalid_arg "Histogram.make: bounds must be finite")
    bounds;
  for i = 1 to Array.length bounds - 1 do
    if bounds.(i) <= bounds.(i - 1) then
      invalid_arg "Histogram.make: bounds must be strictly increasing"
  done

let make ~buckets =
  validate_bounds buckets;
  {
    upper_bounds = Array.copy buckets;
    counts = Array.make (Array.length buckets + 1) 0;
    sum = 0.0;
    count = 0;
  }

let observe t v =
  if Control.enabled () then begin
    let n = Array.length t.upper_bounds in
    let i = ref 0 in
    while !i < n && v > t.upper_bounds.(!i) do
      incr i
    done;
    t.counts.(!i) <- t.counts.(!i) + 1;
    t.sum <- t.sum +. v;
    t.count <- t.count + 1
  end

let count t = t.count
let sum t = t.sum
let mean t = if t.count = 0 then 0.0 else t.sum /. float_of_int t.count
let upper_bounds t = Array.copy t.upper_bounds

let bucket_counts t =
  (* per-bucket (not cumulative); the final pair is the +Inf overflow *)
  Array.to_list
    (Array.mapi
       (fun i c ->
         let bound =
           if i < Array.length t.upper_bounds then t.upper_bounds.(i)
           else infinity
         in
         (bound, c))
       t.counts)

let cumulative t =
  let acc = ref 0 in
  List.map
    (fun (bound, c) ->
      acc := !acc + c;
      (bound, !acc))
    (bucket_counts t)
