(** A bucket witness: the most recent (value, event id, trace id)
    observed into a histogram bucket.  [event_id] references a flight
    recorder {!Event} id, [trace_id] a causal {!Trace.id}; either may
    be 0 (unknown). *)

type t = { value : float; event_id : int; trace_id : int }

val make : ?event_id:int -> ?trace_id:int -> float -> t
