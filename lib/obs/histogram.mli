(** Fixed-bucket histogram: observations are counted into the first
    bucket whose upper bound is [>=] the value, with an implicit [+Inf]
    overflow bucket, plus a running sum and count. *)

type t

val make : buckets:float array -> t
(** Prefer {!Registry.histogram}, which names and deduplicates.
    @raise Invalid_argument unless bounds are finite, non-empty and
    strictly increasing. *)

val observe : t -> float -> unit

val record_exemplar : t -> ?event_id:int -> ?trace_id:int -> float -> unit
(** Remember [(v, event_id, trace_id)] as the witness for [v]'s bucket,
    replacing any earlier witness there.  Does not change counts; pair
    with {!observe} (or use {!observe_ex}).  Histograms that never
    record exemplars export exactly as before. *)

val observe_ex : t -> ?event_id:int -> ?trace_id:int -> float -> unit
(** {!observe} + {!record_exemplar} in one call. *)

val exemplar : t -> int -> Exemplar.t option
(** The current witness for bucket index [i] (0-based, the last index
    being the [+Inf] overflow); [None] out of range or never set. *)

val quantile : t -> float -> float
(** Bucket-interpolated quantile in [0..1]: locates the bucket holding
    the rank-[q*count] observation and linearly interpolates inside it
    (the first bucket interpolates from 0; ranks in the [+Inf]
    overflow clamp to the last finite bound).  Returns [nan] on an
    empty histogram or NaN [q]; [q] outside [0..1] is clamped. *)

val count : t -> int
val sum : t -> float
val mean : t -> float
val upper_bounds : t -> float array

val bucket_counts : t -> (float * int) list
(** Per-bucket [(upper_bound, observations)] pairs in bound order; the
    final pair has bound [infinity] (the overflow bucket).  The counts
    sum to {!count}. *)

val cumulative : t -> (float * int) list
(** Prometheus-style cumulative [le] counts, ending with [infinity]
    whose count equals {!count}. *)

(** Canned bucket ladders. *)

val default_time_buckets : float array  (** wall-clock span seconds *)

val default_sim_buckets : float array  (** simulated-time seconds *)

val ratio_buckets : float array  (** QBER-style ratios, 0..1 *)

val size_buckets : float array  (** bit counts / rates, ~log 1..1M *)
