(* Post-mortem slicing over a dump's wide-event stream: filter on
   schema fields or labels, group by a dimension, and summarize a
   numeric field per group (count + p50/p95/p99 over the raw retained
   events — a dump holds at most lanes x capacity events, so exact
   raw-sample percentiles are the right tool here, unlike the live
   bucketed histograms). *)

type filter =
  | Source of Event.source
  | Tenant of string
  | Qos of string
  | Verdict of string
  | Trace of int
  | Since of float
  | Until of float
  | Label of string * string

let matches (e : Event.t) = function
  | Source s -> e.Event.source = s
  | Tenant t -> e.Event.tenant = t
  | Qos q -> e.Event.qos = q
  | Verdict v -> e.Event.verdict = v
  | Trace id -> e.Event.trace = id
  | Since s -> e.Event.at_s >= s
  | Until s -> e.Event.at_s <= s
  | Label (k, v) -> List.mem_assoc k e.Event.labels
                    && List.assoc k e.Event.labels = v

let apply filters events =
  List.filter (fun e -> List.for_all (matches e) filters) events

(* "key=value" filter syntax for the CLI: schema keys first, any other
   key falls through to label matching. *)
let parse_filter s =
  match String.index_opt s '=' with
  | None -> Error (Printf.sprintf "filter %S is not key=value" s)
  | Some i -> (
      let k = String.sub s 0 i in
      let v = String.sub s (i + 1) (String.length s - i - 1) in
      match k with
      | "source" -> (
          match Event.source_of_label v with
          | Some src -> Ok (Source src)
          | None -> Error (Printf.sprintf "unknown source %S" v))
      | "tenant" -> Ok (Tenant v)
      | "qos" -> Ok (Qos v)
      | "verdict" -> Ok (Verdict v)
      | "trace" -> (
          match int_of_string_opt v with
          | Some id -> Ok (Trace id)
          | None -> Error (Printf.sprintf "trace id %S is not an int" v))
      | "since" | "until" -> (
          match float_of_string_opt v with
          | Some t -> Ok (if k = "since" then Since t else Until t)
          | None -> Error (Printf.sprintf "%s %S is not a float" k v))
      | _ -> Ok (Label (k, v)))

(* Grouping dimensions share the filter keys; an unknown key groups by
   that label's value ("" for events without it). *)
let group_key ~by (e : Event.t) =
  match by with
  | "source" -> Event.source_label e.Event.source
  | "tenant" -> e.Event.tenant
  | "qos" -> e.Event.qos
  | "verdict" -> e.Event.verdict
  | k -> ( match List.assoc_opt k e.Event.labels with Some v -> v | None -> "")

let group_by ~by events =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun e ->
      let k = group_key ~by e in
      match Hashtbl.find_opt tbl k with
      | Some l -> l := e :: !l
      | None ->
          Hashtbl.add tbl k (ref [ e ]);
          order := k :: !order)
    events;
  List.rev_map (fun k -> (k, List.rev !(Hashtbl.find tbl k))) !order

(* Numeric fields a post-mortem slices on.  Events where the field is
   not applicable (NaN qber, empty stage_s) are excluded from the
   sample rather than polluting it with zeros. *)
type field = Latency | Qber | Bits

let field_of_string = function
  | "latency" -> Some Latency
  | "qber" -> Some Qber
  | "bits" -> Some Bits
  | _ -> None

let field_label = function
  | Latency -> "latency_s"
  | Qber -> "qber"
  | Bits -> "bits"

let field_value field (e : Event.t) =
  match field with
  | Latency ->
      if Array.length e.Event.stage_s = 0 then None
      else Some (Event.latency_s e)
  | Qber -> if Float.is_nan e.Event.qber then None else Some e.Event.qber
  | Bits -> Some (float_of_int e.Event.bits)

type summary = {
  group : string;
  count : int;  (** all matching events, with or without the field *)
  samples : int;  (** events contributing to the percentiles *)
  p50 : float;
  p95 : float;
  p99 : float;
}

let summarize ?(field = Latency) ~by events =
  List.map
    (fun (group, evs) ->
      let xs =
        List.filter_map (field_value field) evs |> Array.of_list
      in
      let pct p =
        if Array.length xs = 0 then Float.nan else Qkd_util.Stats.percentile xs p
      in
      {
        group;
        count = List.length evs;
        samples = Array.length xs;
        p50 = pct 50.0;
        p95 = pct 95.0;
        p99 = pct 99.0;
      })
    (group_by ~by events)

let pp_summaries ?(field = Latency) ~by ppf rows =
  Format.fprintf ppf "%-24s %8s %8s %12s %12s %12s@." by "events" "samples"
    ("p50_" ^ field_label field)
    ("p95_" ^ field_label field)
    ("p99_" ^ field_label field);
  List.iter
    (fun r ->
      let f v =
        if Float.is_nan v then "-" else Printf.sprintf "%.6g" v
      in
      Format.fprintf ppf "%-24s %8d %8d %12s %12s %12s@."
        (if r.group = "" then "(none)" else r.group)
        r.count r.samples (f r.p50) (f r.p95) (f r.p99))
    rows
