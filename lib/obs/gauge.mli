(** Instantaneous float value (pool depths, rates). *)

type t

val make : unit -> t
(** Prefer {!Registry.gauge}, which names and deduplicates. *)

val set : t -> float -> unit
val add : t -> float -> unit
val value : t -> float
