(** Instantaneous float value (pool depths, rates).

    Domain-safe: [set] is an atomic store and [add] a compare-and-set
    loop, so concurrent updates never tear or lose an addition. *)

type t

val make : unit -> t
(** Prefer {!Registry.gauge}, which names and deduplicates. *)

val set : t -> float -> unit
val add : t -> float -> unit
val value : t -> float
