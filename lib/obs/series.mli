(** Windowed time-series over the metric registry.

    A {!t} is a fixed-capacity ring buffer of [(time, value)] samples;
    once full, each push evicts the oldest sample.  Series are the
    substrate the {!Alert} engine evaluates rules over: counters and
    gauges give point-in-time numbers, a series gives them a time
    axis — windowed means, rates and confidence intervals.

    Sampling is pull-based: a {!set} binds each series to a source
    (usually a registry counter or gauge) and {!tick} snapshots every
    source at the caller's clock — simulated seconds in the network
    experiments, so sampled health data stays deterministic under a
    fixed seed.  Pushes are gated on {!Control.enabled}, like every
    other metric mutation. *)

type t

val create : ?capacity:int -> string -> t
(** [capacity] defaults to 512 samples.
    @raise Invalid_argument if [capacity <= 0]. *)

val name : t -> string
val capacity : t -> int
val length : t -> int
(** Retained samples, at most [capacity]. *)

val push : t -> t:float -> float -> unit
(** Append a sample.  Times are expected non-decreasing. *)

val nth : t -> int -> float * float
(** [(time, value)]; index 0 is the oldest retained sample.
    @raise Invalid_argument out of range. *)

val samples : t -> (float * float) array
(** All retained samples, oldest first. *)

val restore : t -> (float * float) array -> unit
(** Replace the retained contents with the given samples (oldest
    first) — the series half of a checkpoint restore.  Not gated on
    {!Control.enabled}: restore is state surgery, not sampling.
    @raise Invalid_argument if given more samples than [capacity]. *)

val last : t -> (float * float) option

val window : t -> seconds:float -> (float * float) array
(** Samples no older than [seconds] before the newest one. *)

val windowed_mean : t -> seconds:float -> float
(** Mean value over the window; 0 when empty.  The gauge-style read. *)

val delta : t -> seconds:float -> float
(** Newest minus oldest value in the window; 0 with fewer than two
    samples.  The cumulative-counter read. *)

val rate : t -> seconds:float -> float
(** [delta] per second of window actually covered; 0 when degenerate. *)

val ewma : t -> alpha:float -> float
(** Exponentially-weighted moving average over all retained samples,
    oldest first; 0 when empty.
    @raise Invalid_argument unless [alpha] is in (0, 1]. *)

val ratio : num:t -> den:t -> seconds:float -> float option
(** Windowed [delta num / delta den]; [None] until [delta den > 0].
    E.g. QBER = Δerrors / Δsifted over the window. *)

val wilson_ratio_ci :
  num:t -> den:t -> seconds:float -> z:float -> (float * float) option
(** Wilson score interval (via {!Qkd_util.Stats.binomial_ci}) for the
    windowed ratio, treating the deltas as k-of-n binomial counts.
    [None] until the denominator delta rounds to a positive count. *)

(** {1 Sampled sets} *)

type source = unit -> float

type set

val create_set : ?capacity:int -> unit -> set
(** [capacity] is the default ring size for series added to this set. *)

val labelled_name : string -> (string * string) list -> string
(** Canonical series name for a labelled metric —
    [name{k="v",...}] with labels sorted by key, matching the
    exporter's rendering.  The naming convention shared by
    {!watch_counter}/{!watch_gauge} callers and {!Alert} rules. *)

val watch : set -> ?capacity:int -> string -> source -> t
(** Register (or return the existing) series named [name], sampled
    from [source] on every {!tick}.  First registration wins: a second
    [watch] of the same name returns the original series and ignores
    the new source. *)

val watch_counter : set -> ?capacity:int -> string -> Counter.t -> t
val watch_gauge : set -> ?capacity:int -> string -> Gauge.t -> t

val tick : set -> now:float -> unit
(** Sample every watched source at time [now], in registration order. *)

val find : set -> string -> t option

val all : set -> t list
(** Watched series in registration order. *)
