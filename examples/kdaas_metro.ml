(* Key-distribution-as-a-service on a metro mesh: the endgame the
   paper argues for in §8 — QKD as shared infrastructure, many
   cryptographic consumers drawing keys from one metro network rather
   than one dedicated link per pair.

     dune exec examples/kdaas_metro.exe *)

module Topology = Qkd_net.Topology
module Relay = Qkd_net.Relay
module Sim = Qkd_net.Sim
module Link = Qkd_photonics.Link
module Kms = Qkd_kms.Kms
module Qos = Qkd_kms.Qos
module Tenant = Qkd_kms.Tenant

let () =
  Format.printf "=== key distribution as a service (metro mesh) ===@.@.";

  (* A small metro: 3 neighbourhood rings of 4 relays around a 3-hub
     core, 2 customer endpoints per ring. *)
  let topo =
    Topology.metro_ring_of_rings ~rings:3 ~ring_size:4 ~endpoints_per_ring:2
      ~fiber_km:16.0 ()
  in
  let relay =
    Relay.create
      ~base_config:{ Link.darpa_default with Link.pulse_rate_hz = 1e8 }
      ~low_watermark:(1 lsl 12) ~high_watermark:(1 lsl 16) topo
  in
  Relay.advance relay ~seconds:10.0;
  Format.printf "metro: %d nodes, %d QKD links, pairwise pools filled@.@."
    (Topology.node_count topo)
    (List.length (Topology.edges topo));

  let sim = Sim.create () in
  let kms = Kms.create ~sim relay in

  (* Three tenants in different QoS classes, crossing rings.  The
     endpoints are the e*.* nodes: ids 7–8 on ring 0, 13–14 on ring 1,
     19–20 on ring 2 with this shape. *)
  let bank =
    Kms.register kms ~name:"bank-vpn" ~klass:Qos.Realtime ~src:7 ~dst:13 ()
  in
  let office =
    Kms.register kms ~name:"office-vpn" ~klass:Qos.Standard ~src:8 ~dst:19 ()
  in
  let backup =
    Kms.register kms ~name:"backup-feed" ~klass:Qos.Bulk ~quota_bits:8192
      ~src:14 ~dst:20 ()
  in

  (* 1. The queued path: submit requests, let the simulator dispatch
     them through weighted-fair queueing. *)
  for _ = 1 to 20 do
    Kms.submit kms ~tenant:bank ~bits:256;
    Kms.submit kms ~tenant:office ~bits:256;
    Kms.submit kms ~tenant:backup ~bits:1024
  done;
  Sim.run sim ~until:30.0;

  (* 2. The lease path: reserve, then change your mind — the released
     pads go back to the pools, to the bit. *)
  (match Kms.lease kms ~tenant:office ~bits:2048 with
  | Ok l ->
      Format.printf
        "office-vpn leased 2048 bits, then aborted the handshake — released@."
      |> fun () -> Kms.release_lease kms l
  | Error _ -> Format.printf "lease failed@.");

  let s = Kms.stats kms in
  Format.printf "@.%d requests submitted, %d delivered, %d rejected over \
                 quota@."
    s.Kms.submitted s.Kms.delivered s.Kms.rejected;
  List.iter
    (fun (tn : Tenant.t) ->
      Format.printf "  %-11s (%s): %6d key bits delivered, %6d pad bits \
                     spent across the mesh@."
        tn.Tenant.name
        (Qos.label tn.Tenant.klass)
        tn.Tenant.delivered_bits tn.Tenant.pad_spend_bits)
    (Kms.tenants kms);
  Format.printf
    "@.fairness (jain) %.3f; accounting drift %d bits — the books balance \
     exactly,@.aborted leases included@."
    s.Kms.jain_fairness s.Kms.accounting_drift_bits
