(* Tests for qkd_protocol: wire codec, sifting, Cascade + baseline EC,
   entropy estimation, privacy amplification, key pool, authentication
   and the assembled engine. *)

module Wire = Qkd_protocol.Wire
module Sifting = Qkd_protocol.Sifting
module Cascade = Qkd_protocol.Cascade
module Parity_ec = Qkd_protocol.Parity_ec
module Entropy = Qkd_protocol.Entropy
module Privacy_amp = Qkd_protocol.Privacy_amp
module Key_pool = Qkd_protocol.Key_pool
module Auth = Qkd_protocol.Auth
module Engine = Qkd_protocol.Engine
module Randomness = Qkd_protocol.Randomness
module Qframe = Qkd_protocol.Qframe
module Link = Qkd_photonics.Link
module Eve = Qkd_photonics.Eve
module Source = Qkd_photonics.Source
module Bs = Qkd_util.Bitstring
module Rng = Qkd_util.Rng

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let qcheck = QCheck_alcotest.to_alcotest

(* -- Wire -- *)

let roundtrip msg = Wire.decode (Wire.encode msg)

let test_wire_roundtrips () =
  let msgs =
    [
      Wire.Sift_report { first_slot = 7; symbols = Bytes.of_string "abc" };
      Wire.Sift_response { accepted = Bytes.of_string "\x01\x02" };
      Wire.Ec_parities
        { round = 3; seeds = [| 1l; -7l; 99l |]; parities = Bs.of_string "101" };
      Wire.Ec_mismatch { round = 2; subset_ids = [| 0; 5; 63 |] };
      Wire.Ec_bisect { subset_id = 4; lo = 10; hi = 20; parity = true };
      Wire.Ec_flip { index = 12345 };
      Wire.Ec_verify { seed = 77l; parity = false };
      Wire.Pa_params
        {
          n = 64;
          m = 32;
          modulus_terms = [ 64; 4; 3; 1; 0 ];
          multiplier = Bs.of_string "1100";
          addend = Bs.of_string "01";
        };
      Wire.Auth_tag { tag = Bs.of_string "10101010" };
      Wire.Ike_payload (Bytes.of_string "ike bytes");
    ]
  in
  List.iter (fun m -> check "roundtrip" true (roundtrip m = m)) msgs

let test_wire_crc_detects_corruption () =
  let b = Wire.encode (Wire.Ec_flip { index = 7 }) in
  Bytes.set b 3 'X';
  Alcotest.check_raises "crc" (Wire.Malformed "CRC mismatch") (fun () ->
      ignore (Wire.decode b))

let test_wire_bad_magic () =
  let b = Wire.encode (Wire.Ec_flip { index = 7 }) in
  Bytes.set b 0 '\x00';
  (* breaking the magic also breaks the CRC; magic is checked first *)
  try
    ignore (Wire.decode b);
    Alcotest.fail "should raise"
  with Wire.Malformed _ -> ()

let test_wire_too_short () =
  Alcotest.check_raises "short" (Wire.Malformed "frame too short") (fun () ->
      ignore (Wire.decode (Bytes.create 4)))

let test_wire_encoded_size () =
  let m = Wire.Ec_flip { index = 7 } in
  check_int "size" (Bytes.length (Wire.encode m)) (Wire.encoded_size m)

(* -- Sifting -- *)

let test_sifting_textbook_ratio () =
  (* §5: ~1% detection x 50% basis agreement -> ~1 sifted bit per 200
     pulses; 1000 pulses -> ~5 sifted bits.  Use a bigger run for a
     stable estimate. *)
  let link = Link.run ~seed:200L Link.textbook_example ~pulses:400_000 in
  let s = Sifting.sift link in
  let per_pulse = float_of_int (Array.length s.Sifting.slots) /. 400_000.0 in
  check "about 1/200" true (per_pulse > 1.0 /. 280.0 && per_pulse < 1.0 /. 150.0)

let test_sifting_sides_agree_on_slots () =
  let link = Link.run ~seed:201L Link.darpa_default ~pulses:200_000 in
  let s = Sifting.sift link in
  check_int "equal lengths" (Bs.length s.Sifting.alice_bits) (Bs.length s.Sifting.bob_bits);
  check_int "slots match bits" (Array.length s.Sifting.slots) (Bs.length s.Sifting.alice_bits)

let test_sifting_basis_filter () =
  (* every sifted slot must have matching bases *)
  let link = Link.run ~seed:202L Link.darpa_default ~pulses:100_000 in
  let s = Sifting.sift link in
  let by_slot = Hashtbl.create 64 in
  Array.iter
    (fun (d : Link.detection) -> Hashtbl.replace by_slot d.Link.slot d.Link.bob_basis)
    link.Link.detections;
  Array.iter
    (fun slot ->
      let bob = Hashtbl.find by_slot slot in
      check "bases equal" true
        (Qkd_photonics.Qubit.basis_equal bob (Link.alice_basis link slot)))
    s.Sifting.slots

let test_sifting_qber_small_without_eve () =
  let link = Link.run ~seed:203L Link.darpa_default ~pulses:500_000 in
  let s = Sifting.sift link in
  let q = Sifting.qber s in
  check "qber reasonable" true (q > 0.03 && q < 0.10)

let test_sifting_report_is_compressed () =
  let link = Link.run ~seed:204L Link.darpa_default ~pulses:1_000_000 in
  let s = Sifting.sift link in
  (* raw report would be >= 1 byte per slot *)
  check "rle wins" true (s.Sifting.report_bytes < 100_000)

let test_sifting_counts_consistent () =
  let link = Link.run ~seed:205L Link.darpa_default ~pulses:200_000 in
  let s = Sifting.sift link in
  check_int "detections = sifted + mismatches"
    s.Sifting.detections
    (Array.length s.Sifting.slots + s.Sifting.basis_mismatches)

let test_sifting_wrong_message_type () =
  let link = Link.run ~seed:206L Link.darpa_default ~pulses:1_000 in
  Alcotest.check_raises "wrong type"
    (Wire.Malformed "alice_response: expected a sift report") (fun () ->
      ignore (Sifting.alice_response link (Wire.Ec_flip { index = 0 })))

(* -- Cascade -- *)

let flip_random rng bits p =
  let b = Bs.copy bits in
  let flipped = ref 0 in
  for i = 0 to Bs.length b - 1 do
    if Rng.bernoulli rng p then begin
      Bs.flip b i;
      incr flipped
    end
  done;
  (b, !flipped)

let test_cascade_no_errors () =
  let rng = Rng.create 300L in
  let alice = Rng.bits rng 2048 in
  let r = Cascade.reconcile Cascade.default_config ~alice ~bob:(Bs.copy alice) in
  check_int "nothing corrected" 0 r.Cascade.errors_corrected;
  check "verified" true r.Cascade.verified;
  check "strings equal" true (Bs.equal alice r.Cascade.corrected);
  (* disclosure is only the per-round/pass parities *)
  check "low disclosure" true (r.Cascade.disclosed_bits < 600)

let test_cascade_corrects_all_at_5pct () =
  let rng = Rng.create 301L in
  let alice = Rng.bits rng 4096 in
  let bob, injected = flip_random rng alice 0.05 in
  let r = Cascade.reconcile Cascade.default_config ~alice ~bob in
  check_int "residual zero" 0 (Bs.hamming_distance alice r.Cascade.corrected);
  check_int "found all" injected r.Cascade.errors_corrected;
  check "verified" true r.Cascade.verified

let test_cascade_corrects_high_error_rate () =
  (* "will accurately detect and correct a large number of errors even
     if well above the historical average" *)
  let rng = Rng.create 302L in
  let alice = Rng.bits rng 2048 in
  let bob, _ = flip_random rng alice 0.12 in
  let r = Cascade.reconcile Cascade.default_config ~alice ~bob in
  check_int "residual zero" 0 (Bs.hamming_distance alice r.Cascade.corrected);
  check "verified" true r.Cascade.verified

let test_cascade_adaptive_disclosure () =
  (* more errors -> more disclosure; few errors -> little *)
  let rng = Rng.create 303L in
  let alice = Rng.bits rng 4096 in
  let bob_low, _ = flip_random rng alice 0.01 in
  let bob_high, _ = flip_random rng alice 0.08 in
  let r_low = Cascade.reconcile Cascade.default_config ~alice ~bob:bob_low in
  let r_high = Cascade.reconcile Cascade.default_config ~alice ~bob:bob_high in
  check "adaptive" true
    (r_low.Cascade.disclosed_bits < r_high.Cascade.disclosed_bits)

let test_cascade_efficiency_vs_shannon () =
  (* Disclosure should be within ~2x the Shannon minimum at 5%. *)
  let rng = Rng.create 304L in
  let alice = Rng.bits rng 8192 in
  let bob, injected = flip_random rng alice 0.05 in
  let r = Cascade.reconcile Cascade.default_config ~alice ~bob in
  let p = float_of_int injected /. 8192.0 in
  let h = -.(p *. log p /. log 2.0) -. ((1.0 -. p) *. log (1.0 -. p) /. log 2.0) in
  let shannon = h *. 8192.0 in
  check "within 2x shannon" true (float_of_int r.Cascade.disclosed_bits < 2.0 *. shannon)

let test_cascade_empty_input () =
  let r = Cascade.reconcile Cascade.default_config ~alice:(Bs.create 0) ~bob:(Bs.create 0) in
  check_int "nothing" 0 r.Cascade.errors_corrected;
  check "verified trivially" true r.Cascade.verified

let test_cascade_single_bit () =
  let alice = Bs.of_string "1" in
  let bob = Bs.of_string "0" in
  let r = Cascade.reconcile Cascade.default_config ~alice ~bob in
  check_int "corrected" 1 r.Cascade.errors_corrected;
  check "fixed" true (Bs.equal alice r.Cascade.corrected)

let test_cascade_length_mismatch () =
  Alcotest.check_raises "mismatch" (Invalid_argument "Cascade.reconcile: length mismatch")
    (fun () ->
      ignore (Cascade.reconcile Cascade.default_config ~alice:(Bs.create 4) ~bob:(Bs.create 5)))

let test_cascade_deterministic () =
  let rng = Rng.create 305L in
  let alice = Rng.bits rng 1024 in
  let bob, _ = flip_random rng alice 0.05 in
  let r1 = Cascade.reconcile ~seed:9L Cascade.default_config ~alice ~bob in
  let r2 = Cascade.reconcile ~seed:9L Cascade.default_config ~alice ~bob in
  check_int "same disclosure" r1.Cascade.disclosed_bits r2.Cascade.disclosed_bits

let prop_cascade_always_verifies =
  QCheck.Test.make ~name:"cascade corrects random noise" ~count:20
    QCheck.(pair (int_bound 1000) (int_bound 80))
    (fun (len, epct) ->
      let len = len + 64 in
      let p = float_of_int epct /. 1000.0 in
      let rng = Rng.create (Int64.of_int (len * 1000 + epct)) in
      let alice = Rng.bits rng len in
      let bob, _ = flip_random rng alice p in
      let r = Cascade.reconcile Cascade.default_config ~alice ~bob in
      r.Cascade.verified && Bs.hamming_distance alice r.Cascade.corrected = 0)

(* -- Parity EC baseline -- *)

let test_parity_ec_corrects_most () =
  let rng = Rng.create 310L in
  let alice = Rng.bits rng 4096 in
  let bob, injected = flip_random rng alice 0.05 in
  let r = Parity_ec.reconcile Parity_ec.default_config ~estimated_qber:0.05 ~alice ~bob in
  let residual = Bs.hamming_distance alice r.Parity_ec.corrected in
  check "corrected most" true (residual < injected / 3)

let test_parity_ec_leaves_residual_sometimes () =
  (* single pass misses even-error blocks routinely *)
  let rng = Rng.create 311L in
  let one_pass = { Parity_ec.default_config with Parity_ec.passes = 1 } in
  let any_residual = ref false in
  for i = 0 to 9 do
    let alice = Rng.bits rng 4096 in
    let bob, _ = flip_random rng alice 0.06 in
    let r =
      Parity_ec.reconcile ~seed:(Int64.of_int i) one_pass ~estimated_qber:0.06 ~alice ~bob
    in
    if Bs.hamming_distance alice r.Parity_ec.corrected > 0 then any_residual := true
  done;
  check "baseline is weaker" true !any_residual

let test_parity_ec_worse_than_cascade () =
  let rng = Rng.create 312L in
  let alice = Rng.bits rng 4096 in
  let bob, _ = flip_random rng alice 0.05 in
  let c = Cascade.reconcile Cascade.default_config ~alice ~bob in
  let p = Parity_ec.reconcile Parity_ec.default_config ~estimated_qber:0.05 ~alice ~bob in
  let c_res = Bs.hamming_distance alice c.Cascade.corrected in
  let p_res = Bs.hamming_distance alice p.Parity_ec.corrected in
  check "cascade at least as good" true (c_res <= p_res)

(* -- Entropy -- *)

let wc_source = Source.weak_coherent ~mu:0.1

let inputs ?(b = 2000) ?(e = 100) ?(n = 1_000_000) ?(d = 900) ?(r = 0)
    ?(source = wc_source) () =
  { Entropy.b; e; n; d; r; source }

let test_entropy_bennett_no_errors () =
  let est = Entropy.estimate ~defense:Entropy.Bennett ~confidence:5.0 (inputs ~e:0 ()) in
  Alcotest.(check (float 1e-9)) "no leak" 0.0 est.Entropy.eavesdrop_leak;
  Alcotest.(check (float 1e-9)) "no sd" 0.0 est.Entropy.eavesdrop_sd

let test_entropy_bennett_formula () =
  let est = Entropy.estimate ~defense:Entropy.Bennett ~confidence:5.0 (inputs ~e:50 ()) in
  Alcotest.(check (float 1e-6)) "4e/sqrt2" (200.0 /. sqrt 2.0) est.Entropy.eavesdrop_leak;
  Alcotest.(check (float 1e-6))
    "sd" (sqrt ((4.0 +. (2.0 *. sqrt 2.0)) *. 50.0))
    est.Entropy.eavesdrop_sd

let test_entropy_slutsky_zero_and_third () =
  let est0 = Entropy.estimate ~defense:Entropy.Slutsky ~confidence:0.0 (inputs ~e:0 ()) in
  Alcotest.(check (float 1e-6)) "T(0)=0" 0.0 est0.Entropy.eavesdrop_leak;
  (* at e' >= 1/3 the whole string is compromised *)
  let est3 =
    Entropy.estimate ~defense:Entropy.Slutsky ~confidence:0.0 (inputs ~b:900 ~e:300 ())
  in
  Alcotest.(check (float 1e-3)) "T(1/3)=b" 900.0 est3.Entropy.eavesdrop_leak

let test_entropy_slutsky_more_conservative () =
  (* at the paper's operating point (6.5% QBER, metro blocks) Slutsky
     should charge more than Bennett *)
  let i = inputs ~b:3000 ~e:195 ~d:1300 () in
  let bennett = Entropy.estimate ~defense:Entropy.Bennett ~confidence:5.0 i in
  let slutsky = Entropy.estimate ~defense:Entropy.Slutsky ~confidence:5.0 i in
  check "slutsky charges more" true
    (slutsky.Entropy.eavesdrop_leak > bennett.Entropy.eavesdrop_leak);
  check "slutsky fewer secure bits" true
    (slutsky.Entropy.secure_bits <= bennett.Entropy.secure_bits)

let test_entropy_disclosed_subtracted_exactly () =
  let e1 = Entropy.estimate ~defense:Entropy.Bennett ~confidence:5.0 (inputs ~d:100 ()) in
  let e2 = Entropy.estimate ~defense:Entropy.Bennett ~confidence:5.0 (inputs ~d:300 ()) in
  check_int "extra disclosure costs exactly" 200
    (e1.Entropy.secure_bits - e2.Entropy.secure_bits)

let test_entropy_nonrandom_placeholder () =
  let e1 = Entropy.estimate ~defense:Entropy.Bennett ~confidence:5.0 (inputs ~r:0 ()) in
  let e2 = Entropy.estimate ~defense:Entropy.Bennett ~confidence:5.0 (inputs ~r:64 ()) in
  check_int "r shortens" 64 (e1.Entropy.secure_bits - e2.Entropy.secure_bits)

let test_entropy_strict_pns_kills_wcp () =
  (* Strict accounting: n * p_multi > b at metro loss -> zero key *)
  let est =
    Entropy.estimate ~defense:Entropy.Bennett ~accounting:Entropy.Strict ~confidence:5.0
      (inputs ())
  in
  check_int "no key" 0 est.Entropy.secure_bits

let test_entropy_entangled_immune_to_strict () =
  let entangled = Source.entangled_pair ~mu:0.1 in
  let est =
    Entropy.estimate ~defense:Entropy.Bennett ~accounting:Entropy.Strict ~confidence:5.0
      (inputs ~source:entangled ())
  in
  check "entangled keeps key" true (est.Entropy.secure_bits > 0)

let test_entropy_confidence_margin () =
  let lo = Entropy.estimate ~defense:Entropy.Bennett ~confidence:1.0 (inputs ()) in
  let hi = Entropy.estimate ~defense:Entropy.Bennett ~confidence:10.0 (inputs ()) in
  check "higher confidence fewer bits" true
    (hi.Entropy.secure_bits < lo.Entropy.secure_bits)

let test_entropy_validation () =
  Alcotest.check_raises "e > b" (Invalid_argument "Entropy.estimate: e > b") (fun () ->
      ignore
        (Entropy.estimate ~defense:Entropy.Bennett ~confidence:5.0 (inputs ~b:10 ~e:11 ())))

let test_entropy_never_negative () =
  let est =
    Entropy.estimate ~defense:Entropy.Slutsky ~confidence:5.0
      (inputs ~b:100 ~e:30 ~d:90 ())
  in
  check "clamped at zero" true (est.Entropy.secure_bits = 0)

(* -- Privacy amplification -- *)

let test_pa_amplify_length_and_agreement () =
  let rng = Rng.create 400L in
  let bits = Rng.bits rng 3000 in
  let r = Privacy_amp.amplify rng ~bits ~secure_bits:1200 in
  check_int "length" 1200 (Bs.length r.Privacy_amp.distilled);
  (* Bob recomputes from the wire messages *)
  let bob = Privacy_amp.apply_params r.Privacy_amp.params_messages bits in
  check "sides agree" true (Bs.equal r.Privacy_amp.distilled bob)

let test_pa_zero_bits () =
  let rng = Rng.create 401L in
  let r = Privacy_amp.amplify rng ~bits:(Rng.bits rng 100) ~secure_bits:0 in
  check_int "empty" 0 (Bs.length r.Privacy_amp.distilled);
  check_int "no messages" 0 (List.length r.Privacy_amp.params_messages)

let test_pa_clamps_to_input () =
  let rng = Rng.create 402L in
  let r = Privacy_amp.amplify rng ~bits:(Rng.bits rng 100) ~secure_bits:500 in
  check_int "clamped" 100 (Bs.length r.Privacy_amp.distilled)

let test_pa_chunking_large_input () =
  let rng = Rng.create 403L in
  let bits = Rng.bits rng 5000 in
  let r = Privacy_amp.amplify rng ~bits ~secure_bits:2000 in
  check_int "length" 2000 (Bs.length r.Privacy_amp.distilled);
  check "several chunks" true (List.length r.Privacy_amp.params_messages >= 4);
  let bob = Privacy_amp.apply_params r.Privacy_amp.params_messages bits in
  check "agree across chunks" true (Bs.equal r.Privacy_amp.distilled bob)

let test_pa_differing_inputs_decorrelate () =
  let rng = Rng.create 404L in
  let bits = Rng.bits rng 512 in
  let bits' = Bs.copy bits in
  Bs.flip bits' 100;
  let r = Privacy_amp.amplify rng ~bits ~secure_bits:256 in
  let other = Privacy_amp.apply_params r.Privacy_amp.params_messages bits' in
  (* a single input-bit flip should flip ~half the output *)
  let d = Bs.hamming_distance r.Privacy_amp.distilled other in
  check "avalanche" true (d > 64 && d < 192)

(* -- Key pool -- *)

let test_pool_fifo_order () =
  let p = Key_pool.create () in
  Key_pool.offer p (Bs.of_string "1010");
  Key_pool.offer p (Bs.of_string "0011");
  Alcotest.(check string) "first" "1010" (Bs.to_string (Key_pool.consume p 4));
  Alcotest.(check string) "second" "0011" (Bs.to_string (Key_pool.consume p 4))

let test_pool_split_chunks () =
  let p = Key_pool.create () in
  Key_pool.offer p (Bs.of_string "111000");
  Alcotest.(check string) "head" "11" (Bs.to_string (Key_pool.consume p 2));
  Alcotest.(check string) "middle across" "1000" (Bs.to_string (Key_pool.consume p 4))

let test_pool_exhausted_atomic () =
  let p = Key_pool.create ~initial:(Bs.of_string "101") () in
  (try ignore (Key_pool.consume p 5) with Key_pool.Exhausted _ -> ());
  check_int "untouched" 3 (Key_pool.available p)

let test_pool_counters () =
  let p = Key_pool.create () in
  Key_pool.offer p (Bs.create 100);
  ignore (Key_pool.consume p 60);
  check_int "offered" 100 (Key_pool.total_offered p);
  check_int "consumed" 60 (Key_pool.total_consumed p);
  check_int "available" 40 (Key_pool.available p)

let test_pool_restore_round_trip () =
  let p = Key_pool.create () in
  Key_pool.offer p (Bs.of_string "110100101");
  let head = Key_pool.consume p 5 in
  Key_pool.restore p head;
  check_int "level back" 9 (Key_pool.available p);
  check_int "spend undone" 0 (Key_pool.total_consumed p);
  Alcotest.(check string) "same bits, same order" "110100101"
    (Bs.to_string (Key_pool.consume p 9))

(* Offer an arbitrary series of chunks, consume the total in arbitrary
   splits: the concatenated output must equal the concatenated input,
   and the counters must conserve exactly. *)
let prop_pool_round_trip_and_conservation =
  QCheck.Test.make ~name:"pool offer/consume round-trip + conservation" ~count:100
    QCheck.(pair (small_list (int_bound 50)) (int_bound 1000))
    (fun (chunk_sizes, seed) ->
      let rng = Rng.create (Int64.of_int (seed + 1)) in
      let p = Key_pool.create () in
      let offered =
        List.map
          (fun n ->
            let bits = Rng.bits rng n in
            Key_pool.offer p (Bs.copy bits);
            bits)
          chunk_sizes
      in
      let total = List.fold_left (fun acc b -> acc + Bs.length b) 0 offered in
      QCheck.assume (Key_pool.total_offered p = total);
      let out = ref [] in
      let left = ref total in
      while !left > 0 do
        let n = min !left (1 + Rng.int rng 17) in
        out := Key_pool.consume p n :: !out;
        left := !left - n
      done;
      Bs.equal (Bs.concat_list offered) (Bs.concat_list (List.rev !out))
      && Key_pool.total_consumed p = total
      && Key_pool.available p = 0)

(* The amortised-O(1) offer: a pool fed in very many small increments
   must stay cheap (the old list-append implementation was O(n^2) and
   takes minutes at this size). *)
let test_pool_many_small_chunks_fast () =
  let t0 = Sys.time () in
  let p = Key_pool.create () in
  let chunk = Bs.create 8 in
  for _ = 1 to 100_000 do
    Key_pool.offer p (Bs.copy chunk)
  done;
  while Key_pool.available p >= 12_800 do
    ignore (Key_pool.consume p 12_800)
  done;
  check_int "all offered" 800_000 (Key_pool.total_offered p);
  check "fast enough" true (Sys.time () -. t0 < 5.0)

(* -- Auth -- *)

let mirrored_auths bits =
  let rng = Rng.create 500L in
  let material = Rng.bits rng bits in
  (Auth.create ~prepositioned:(Bs.copy material), Auth.create ~prepositioned:material)

let test_auth_tag_verify_in_lockstep () =
  let a, b = mirrored_auths 1024 in
  let msg = Bytes.of_string "sift report #1" in
  (match Auth.tag a msg with
  | Ok tag -> (
      match Auth.verify b ~tag msg with
      | Ok () -> ()
      | Error e -> Alcotest.failf "verify: %a" Auth.pp_error e)
  | Error e -> Alcotest.failf "tag: %a" Auth.pp_error e);
  check_int "both consumed equally" (Auth.consumed_bits a) (Auth.consumed_bits b)

let test_auth_detects_forgery () =
  let a, b = mirrored_auths 1024 in
  match Auth.tag a (Bytes.of_string "genuine") with
  | Ok tag -> (
      match Auth.verify b ~tag (Bytes.of_string "forged!") with
      | Error Auth.Tag_mismatch -> ()
      | Ok () -> Alcotest.fail "forgery accepted"
      | Error e -> Alcotest.failf "unexpected: %a" Auth.pp_error e)
  | Error e -> Alcotest.failf "tag: %a" Auth.pp_error e

let test_auth_exhaustion () =
  let a, _ = mirrored_auths Auth.bits_per_message in
  (match Auth.tag a (Bytes.of_string "one") with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "first should work: %a" Auth.pp_error e);
  match Auth.tag a (Bytes.of_string "two") with
  | Error Auth.Pool_exhausted -> ()
  | Ok _ -> Alcotest.fail "should be exhausted"
  | Error e -> Alcotest.failf "unexpected: %a" Auth.pp_error e

let test_auth_replenish_restores () =
  let a, _ = mirrored_auths Auth.bits_per_message in
  ignore (Auth.tag a (Bytes.of_string "one"));
  Auth.replenish a (Rng.bits (Rng.create 501L) Auth.bits_per_message);
  match Auth.tag a (Bytes.of_string "two") with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "replenished should work: %a" Auth.pp_error e

let test_auth_counters () =
  let a, b = mirrored_auths 4096 in
  ignore (Auth.tag a (Bytes.of_string "m"));
  (match Auth.tag a (Bytes.of_string "m2") with Ok _ | Error _ -> ());
  ignore b;
  check_int "consumed" (2 * Auth.bits_per_message) (Auth.consumed_bits a);
  check_int "tagged" 2 (Auth.messages_tagged a)

(* -- Qframe -- *)

let test_qframe_roundtrip () =
  let f =
    {
      Qframe.side = Qframe.Bob_frames;
      seq = 17;
      first_slot = 17 * 4096;
      symbols = Array.init 100 (fun i -> i mod 4);
    }
  in
  let f' = Qframe.decode (Qframe.encode f) in
  check "roundtrip" true (f = f')

let test_qframe_crc () =
  let f =
    { Qframe.side = Qframe.Alice_frames; seq = 0; first_slot = 0; symbols = [| 1; 2 |] }
  in
  let b = Qframe.encode f in
  Bytes.set b 7 '\xFF';
  Alcotest.check_raises "crc" (Qframe.Malformed "qframe CRC mismatch") (fun () ->
      ignore (Qframe.decode b))

let test_qframe_covers_link () =
  let link = Link.run ~seed:900L Link.darpa_default ~pulses:20_000 in
  let alice = Qframe.alice_frames link ~frame_size:4096 in
  let bob = Qframe.bob_frames link ~frame_size:4096 in
  check_int "alice covers all slots" 20_000 (Qframe.slots_covered alice);
  check_int "bob covers all slots" 20_000 (Qframe.slots_covered bob);
  check_int "no gaps" 0 (List.length (Qframe.missing_frames bob));
  (* alice frames encode her real settings *)
  let f0 = List.hd alice in
  Array.iteri
    (fun i sym ->
      let basis = sym lsr 1 = 1 and value = sym land 1 = 1 in
      check "basis matches" true
        (basis = Qkd_util.Bitstring.get link.Link.alice_bases i);
      check "value matches" true
        (value = Qkd_util.Bitstring.get link.Link.alice_values i))
    (Array.sub f0.Qframe.symbols 0 256)

let test_qframe_bob_symbols_match_detections () =
  let link = Link.run ~seed:901L Link.darpa_default ~pulses:50_000 in
  let frames = Qframe.bob_frames link ~frame_size:4096 in
  let flat = Array.concat (List.map (fun f -> f.Qframe.symbols) frames) in
  let nonzero = Array.fold_left (fun acc s -> if s <> 0 then acc + 1 else acc) 0 flat in
  check_int "one symbol per detection" (Array.length link.Link.detections) nonzero

let test_qframe_missing_detection () =
  let mk seq = { Qframe.side = Qframe.Bob_frames; seq; first_slot = seq * 10; symbols = [| 0 |] } in
  Alcotest.(check (list int)) "gaps" [ 2; 4 ]
    (Qframe.missing_frames [ mk 1; mk 3; mk 5 ]);
  Alcotest.(check (list int)) "no gaps" [] (Qframe.missing_frames [ mk 7; mk 8 ]);
  Alcotest.(check (list int)) "empty" [] (Qframe.missing_frames [])

let test_qframe_bad_symbol () =
  let f = { Qframe.side = Qframe.Bob_frames; seq = 0; first_slot = 0; symbols = [| 4 |] } in
  Alcotest.check_raises "range" (Invalid_argument "Qframe.encode: symbol out of range")
    (fun () -> ignore (Qframe.encode f))

(* -- Randomness -- *)

let test_randomness_fair_bits_pass () =
  let bits = Rng.bits (Rng.create 800L) 20_000 in
  let r = Randomness.test bits in
  check "passes" true r.Randomness.passed;
  check_int "no shortening" 0 r.Randomness.shorten_bits

let test_randomness_biased_bits_fail () =
  (* 60/40 bias: the detector-bias case of section 6 *)
  let rng = Rng.create 801L in
  let bits = Bs.create 20_000 in
  for i = 0 to 19_999 do
    Bs.set bits i (Rng.bernoulli rng 0.6)
  done;
  let r = Randomness.test bits in
  check "fails" false r.Randomness.passed;
  check "charges bits" true (r.Randomness.shorten_bits > 100);
  check "not more than all" true (r.Randomness.shorten_bits <= 20_000)

let test_randomness_constant_fails_hard () =
  let bits = Bs.create 1024 in
  (* all zeros *)
  let r = Randomness.test bits in
  check "fails" false r.Randomness.passed;
  check_int "everything charged" 1024 r.Randomness.shorten_bits

let test_randomness_alternating_fails () =
  let bits = Bs.create 4096 in
  for i = 0 to 4095 do
    Bs.set bits i (i land 1 = 1)
  done;
  let r = Randomness.test bits in
  (* perfectly alternating: monobit fine, autocorrelation/runs scream *)
  check "fails" false r.Randomness.passed;
  check "lag-1 = -1" true (r.Randomness.autocorrelation_lag1 < -0.99)

let test_randomness_short_input_tolerant () =
  let r = Randomness.test (Bs.create 64) in
  check "short passes" true r.Randomness.passed;
  check_int "no charge" 0 r.Randomness.shorten_bits

let test_randomness_bias_measure () =
  check_int "balanced" 0 (Randomness.detector_bias_measure ~zeros:5000 ~ones:5000);
  check "biased charged" true
    (Randomness.detector_bias_measure ~zeros:6000 ~ones:4000 > 0);
  check_int "empty" 0 (Randomness.detector_bias_measure ~zeros:0 ~ones:0)

let test_randomness_engine_bias_detected () =
  (* a mismatched APD pair biases the raw key; the engine's randomness
     battery must charge for it, shrinking the secure yield *)
  let biased_detector =
    { Qkd_photonics.Detector.default with Qkd_photonics.Detector.d1_efficiency_factor = 0.5 }
  in
  let config =
    {
      Engine.default_config with
      Engine.link = { Link.darpa_default with Link.detector = biased_detector };
    }
  in
  let engine = Engine.create config in
  match Engine.run_round engine ~pulses:2_000_000 with
  | Ok m ->
      check "bias charged via r" true (m.Engine.entropy.Entropy.nonrandom > 0)
  | Error f -> Alcotest.failf "round failed: %a" Engine.pp_failure f

(* -- Engine -- *)

let test_engine_round_delivers_key () =
  let eng = Engine.create Engine.default_config in
  match Engine.run_round eng ~pulses:2_000_000 with
  | Ok m ->
      check "sifted" true (m.Engine.sifted_bits > 2000);
      check "qber in band" true (m.Engine.qber > 0.04 && m.Engine.qber < 0.10);
      check "secure bits positive" true (m.Engine.entropy.Entropy.secure_bits > 0);
      check "key delivered" true (Key_pool.available (Engine.alice_pool eng) > 0)
  | Error f -> Alcotest.failf "round failed: %a" Engine.pp_failure f

let test_engine_pools_identical () =
  let eng = Engine.create Engine.default_config in
  (match Engine.run_round eng ~pulses:2_000_000 with
  | Ok _ -> ()
  | Error f -> Alcotest.failf "round failed: %a" Engine.pp_failure f);
  let n = Key_pool.available (Engine.alice_pool eng) in
  check_int "same size" n (Key_pool.available (Engine.bob_pool eng));
  let a = Key_pool.consume (Engine.alice_pool eng) n in
  let b = Key_pool.consume (Engine.bob_pool eng) n in
  check "identical bits" true (Bs.equal a b)

let test_engine_detects_tampering () =
  let eng = Engine.create Engine.default_config in
  match Engine.run_round ~tamper:true eng ~pulses:200_000 with
  | Error Engine.Auth_tampered -> ()
  | Ok _ -> Alcotest.fail "tampering not detected"
  | Error f -> Alcotest.failf "unexpected failure: %a" Engine.pp_failure f

let test_engine_eve_intercept_raises_qber_kills_key () =
  let config =
    {
      Engine.default_config with
      Engine.link = { Link.darpa_default with Link.eve = Eve.Intercept_resend 1.0 };
    }
  in
  let eng = Engine.create config in
  match Engine.run_round eng ~pulses:1_000_000 with
  | Ok m ->
      check "qber blown up" true (m.Engine.qber > 0.2);
      check_int "no key distilled" 0 m.Engine.distilled_bits
  | Error Engine.Ec_not_verified ->
      (* acceptable: EC may fail outright at 28% error *)
      ()
  | Error f -> Alcotest.failf "unexpected: %a" Engine.pp_failure f

let test_engine_auth_exhaustion_without_yield () =
  (* Small rounds never distill; the pre-positioned pool drains and the
     engine reports the DoS. *)
  let config = { Engine.default_config with Engine.auth_prepositioned_bits = 512 } in
  let eng = Engine.create config in
  let rec drive n =
    if n = 0 then Alcotest.fail "never exhausted"
    else
      match Engine.run_round eng ~pulses:50_000 with
      | Error Engine.Auth_exhausted -> ()
      | Ok _ | Error _ -> drive (n - 1)
  in
  drive 10

let test_engine_beamsplit_eve_knows_bits () =
  let config =
    {
      Engine.default_config with
      Engine.link = { Link.darpa_default with Link.eve = Eve.Beamsplit };
    }
  in
  let eng = Engine.create config in
  match Engine.run_round eng ~pulses:1_000_000 with
  | Ok m ->
      check "eve knows some sifted bits" true (m.Engine.eve_known_sifted_bits > 0);
      (* multiphoton accounting must charge at least Eve's actual haul
         on average; generous bound here *)
      check "accounting covers haul" true
        (m.Engine.entropy.Entropy.multiphoton_leak
        > 0.5 *. float_of_int m.Engine.eve_known_sifted_bits)
  | Error f -> Alcotest.failf "round failed: %a" Engine.pp_failure f

let test_engine_parity_baseline_diverges () =
  (* the conventional parity baseline misses even-weight residuals:
     over a few rounds either the verify parity trips (round aborted)
     or the two ends silently distil DIFFERENT keys *)
  let config = { Engine.default_config with Engine.ec = Engine.Ec_parity_checks } in
  let engine = Engine.create config in
  let diverged = ref false and aborted = ref 0 in
  for _ = 1 to 8 do
    match Engine.run_round engine ~pulses:1_000_000 with
    | Ok _ ->
        let n =
          min
            (Key_pool.available (Engine.alice_pool engine))
            (Key_pool.available (Engine.bob_pool engine))
        in
        if n > 0 then begin
          let a = Key_pool.consume (Engine.alice_pool engine) n in
          let b = Key_pool.consume (Engine.bob_pool engine) n in
          if not (Bs.equal a b) then diverged := true
        end
    | Error Engine.Ec_not_verified -> incr aborted
    | Error _ -> ()
  done;
  check "baseline fails somehow" true (!diverged || !aborted > 0)

let test_engine_running_qber_estimate_helps () =
  (* with the running estimate, later rounds size their first EC pass
     correctly and disclose no more than the first round did *)
  let engine = Engine.create Engine.default_config in
  let disclosures = ref [] in
  for _ = 1 to 3 do
    match Engine.run_round engine ~pulses:1_000_000 with
    | Ok m ->
        disclosures :=
          (float_of_int m.Engine.disclosed_bits /. float_of_int m.Engine.sifted_bits)
          :: !disclosures
    | Error f -> Alcotest.failf "round failed: %a" Engine.pp_failure f
  done;
  match List.rev !disclosures with
  | first :: rest ->
      List.iter (fun later -> check "no worse than round 1" true (later < first +. 0.05)) rest
  | [] -> Alcotest.fail "no rounds"

let test_engine_channel_bytes_metered () =
  let eng = Engine.create Engine.default_config in
  match Engine.run_round eng ~pulses:1_000_000 with
  | Ok m -> check "bytes counted" true (m.Engine.channel_bytes > 1000)
  | Error f -> Alcotest.failf "round failed: %a" Engine.pp_failure f

(* -- Staged pipeline + engine bugfix regressions -- *)

(* A Cascade config that corrects nothing but still runs the full
   verification stage: any round with errors deterministically fails
   verification, forcing [Ec_not_verified]. *)
let no_correction_cascade =
  {
    Cascade.subsets_per_round = 0;
    max_rounds = 0;
    clean_rounds = 0;
    verify_subsets = 16;
    block_passes = 0;
  }

let test_engine_failed_ec_preserves_qber_chain () =
  let config =
    { Engine.default_config with Engine.cascade = no_correction_cascade }
  in
  let eng = Engine.create config in
  (match Engine.run_round eng ~pulses:500_000 with
  | Error Engine.Ec_not_verified -> ()
  | Ok _ -> Alcotest.fail "crippled cascade should not verify"
  | Error f -> Alcotest.failf "unexpected failure: %a" Engine.pp_failure f);
  check "failed round leaves the QBER chain untouched" true
    (Engine.last_qber eng = None);
  (* and a verified round feeds it with its measured rate *)
  let healthy = Engine.create Engine.default_config in
  match Engine.run_round healthy ~pulses:2_000_000 with
  | Ok m -> check "chain fed on success" true
      (Engine.last_qber healthy = Some m.Engine.qber)
  | Error f -> Alcotest.failf "round failed: %a" Engine.pp_failure f

let test_engine_zero_elapsed_round_guarded () =
  (* an infinite-rate link produces a zero-duration batch; the
     throughput fields must clamp to 0 rather than emit inf/nan (which
     would poison the health-series histograms and crash
     Stats.percentile) *)
  let config =
    {
      Engine.default_config with
      Engine.link = { Link.darpa_default with Link.pulse_rate_hz = infinity };
    }
  in
  let eng = Engine.create config in
  match Engine.run_round eng ~pulses:1_000_000 with
  | Ok m ->
      check "elapsed is exactly zero" true (m.Engine.elapsed_s = 0.0);
      check "sifted_bps clamped" true (m.Engine.sifted_bps = 0.0);
      check "distilled_bps clamped" true (m.Engine.distilled_bps = 0.0)
  | Error f -> Alcotest.failf "round failed: %a" Engine.pp_failure f

let test_engine_round_counters_reconcile () =
  let eng = Engine.create Engine.default_config in
  (match Engine.run_round ~tamper:true eng ~pulses:200_000 with
  | Error Engine.Auth_tampered -> ()
  | _ -> Alcotest.fail "expected tamper abort");
  check_int "aborted round attempted" 1 (Engine.rounds_attempted eng);
  check_int "aborted round not completed" 0 (Engine.rounds_completed eng);
  check_int "aborted round counted failed" 1 (Engine.rounds_failed eng);
  (match Engine.run_round eng ~pulses:2_000_000 with
  | Ok _ -> ()
  | Error f -> Alcotest.failf "round failed: %a" Engine.pp_failure f);
  check_int "attempted counts both" 2 (Engine.rounds_attempted eng);
  check_int "completed counts success" 1 (Engine.rounds_completed eng);
  check_int "failed unchanged by success" 1 (Engine.rounds_failed eng)

(* Everything the reproducibility contract promises: per-round
   results, both pools' contents, both ends' auth spend/replenishment,
   the QBER chain and the round counters.  Draining the pools makes
   the comparison cover the actual key bits, not just counts. *)
let engine_state_fingerprint eng =
  let drain p =
    let n = Key_pool.available p in
    (n, Key_pool.consume p n)
  in
  ( drain (Engine.alice_pool eng),
    drain (Engine.bob_pool eng),
    Auth.consumed_bits (Engine.alice_auth eng),
    Auth.consumed_bits (Engine.bob_auth eng),
    Auth.replenished_bits (Engine.alice_auth eng),
    Auth.replenished_bits (Engine.bob_auth eng),
    Engine.last_qber eng,
    Engine.rounds_completed eng,
    Engine.rounds_failed eng )

let run_serial config ~seed ~rounds ~pulses ~tamper =
  let eng = Engine.create ~seed config in
  let acc = ref [] in
  for _ = 1 to rounds do
    acc := Engine.run_round ~tamper eng ~pulses :: !acc
  done;
  (eng, List.rev !acc)

let run_pipelined config ~seed ~rounds ~pulses ~tamper ~depth =
  let eng = Engine.create ~seed config in
  let acc = ref [] in
  Engine.run_rounds ~tamper ~pipeline_depth:depth eng ~rounds ~pulses (fun r ->
      acc := r :: !acc);
  (eng, List.rev !acc)

let prop_pipeline_bit_identical =
  QCheck.Test.make ~count:8
    ~name:"pipelined engine bit-identical to serial (any depth/domains/Eve)"
    QCheck.(quad (int_bound 1000) (int_range 2 5) (int_range 1 3) bool)
    (fun (seed, depth, domains, eve) ->
      let config =
        {
          Engine.default_config with
          Engine.link =
            {
              Link.darpa_default with
              Link.eve = (if eve then Eve.Intercept_resend 1.0 else Eve.Passive);
            };
          link_mode = Link.Batched { domains };
        }
      in
      let seed = Int64.of_int ((seed * 13) + 11) in
      let rounds = 4 and pulses = 60_000 in
      let e1, r1 = run_serial config ~seed ~rounds ~pulses ~tamper:false in
      let e2, r2 = run_pipelined config ~seed ~rounds ~pulses ~tamper:false ~depth in
      r1 = r2 && engine_state_fingerprint e1 = engine_state_fingerprint e2)

let test_pipeline_aborted_round_commits_nothing () =
  (* rounds killed in flight (tampered tags) must leave the engine
     exactly as the serial failure path does: no pool fill, no auth
     replenishment, failure counters only *)
  let rounds = 3 and pulses = 200_000 in
  let eng, piped =
    run_pipelined Engine.default_config ~seed:2003L ~rounds ~pulses
      ~tamper:true ~depth:3
  in
  check_int "three results" rounds (List.length piped);
  List.iter
    (function
      | Error Engine.Auth_tampered -> ()
      | Ok _ -> Alcotest.fail "tampered round completed"
      | Error f -> Alcotest.failf "unexpected failure: %a" Engine.pp_failure f)
    piped;
  check_int "no key committed (alice)" 0
    (Key_pool.available (Engine.alice_pool eng));
  check_int "no key committed (bob)" 0
    (Key_pool.available (Engine.bob_pool eng));
  check_int "nothing replenished" 0
    (Auth.replenished_bits (Engine.alice_auth eng));
  check_int "no round completed" 0 (Engine.rounds_completed eng);
  check_int "all rounds failed" rounds (Engine.rounds_failed eng);
  let e_serial, r_serial =
    run_serial Engine.default_config ~seed:2003L ~rounds ~pulses ~tamper:true
  in
  check "identical to the serial tamper run" true
    (piped = r_serial
    && engine_state_fingerprint eng = engine_state_fingerprint e_serial)

let () =
  Alcotest.run "qkd_protocol"
    [
      ( "wire",
        [
          Alcotest.test_case "roundtrips" `Quick test_wire_roundtrips;
          Alcotest.test_case "crc detects corruption" `Quick test_wire_crc_detects_corruption;
          Alcotest.test_case "bad magic" `Quick test_wire_bad_magic;
          Alcotest.test_case "too short" `Quick test_wire_too_short;
          Alcotest.test_case "encoded size" `Quick test_wire_encoded_size;
        ] );
      ( "sifting",
        [
          Alcotest.test_case "textbook ratio" `Quick test_sifting_textbook_ratio;
          Alcotest.test_case "sides agree" `Quick test_sifting_sides_agree_on_slots;
          Alcotest.test_case "basis filter" `Quick test_sifting_basis_filter;
          Alcotest.test_case "qber no eve" `Quick test_sifting_qber_small_without_eve;
          Alcotest.test_case "rle compression" `Slow test_sifting_report_is_compressed;
          Alcotest.test_case "counts consistent" `Quick test_sifting_counts_consistent;
          Alcotest.test_case "wrong message" `Quick test_sifting_wrong_message_type;
        ] );
      ( "cascade",
        [
          Alcotest.test_case "no errors" `Quick test_cascade_no_errors;
          Alcotest.test_case "corrects 5%" `Quick test_cascade_corrects_all_at_5pct;
          Alcotest.test_case "corrects 12%" `Quick test_cascade_corrects_high_error_rate;
          Alcotest.test_case "adaptive" `Quick test_cascade_adaptive_disclosure;
          Alcotest.test_case "vs shannon" `Quick test_cascade_efficiency_vs_shannon;
          Alcotest.test_case "empty" `Quick test_cascade_empty_input;
          Alcotest.test_case "single bit" `Quick test_cascade_single_bit;
          Alcotest.test_case "length mismatch" `Quick test_cascade_length_mismatch;
          Alcotest.test_case "deterministic" `Quick test_cascade_deterministic;
          qcheck prop_cascade_always_verifies;
        ] );
      ( "parity-ec",
        [
          Alcotest.test_case "corrects most" `Quick test_parity_ec_corrects_most;
          Alcotest.test_case "residual errors" `Quick test_parity_ec_leaves_residual_sometimes;
          Alcotest.test_case "worse than cascade" `Quick test_parity_ec_worse_than_cascade;
        ] );
      ( "entropy",
        [
          Alcotest.test_case "bennett no errors" `Quick test_entropy_bennett_no_errors;
          Alcotest.test_case "bennett formula" `Quick test_entropy_bennett_formula;
          Alcotest.test_case "slutsky bounds" `Quick test_entropy_slutsky_zero_and_third;
          Alcotest.test_case "slutsky conservative" `Quick test_entropy_slutsky_more_conservative;
          Alcotest.test_case "disclosure exact" `Quick test_entropy_disclosed_subtracted_exactly;
          Alcotest.test_case "nonrandom placeholder" `Quick test_entropy_nonrandom_placeholder;
          Alcotest.test_case "strict pns kills wcp" `Quick test_entropy_strict_pns_kills_wcp;
          Alcotest.test_case "entangled survives" `Quick test_entropy_entangled_immune_to_strict;
          Alcotest.test_case "confidence margin" `Quick test_entropy_confidence_margin;
          Alcotest.test_case "validation" `Quick test_entropy_validation;
          Alcotest.test_case "never negative" `Quick test_entropy_never_negative;
        ] );
      ( "privacy-amp",
        [
          Alcotest.test_case "length + agreement" `Quick test_pa_amplify_length_and_agreement;
          Alcotest.test_case "zero bits" `Quick test_pa_zero_bits;
          Alcotest.test_case "clamps" `Quick test_pa_clamps_to_input;
          Alcotest.test_case "chunking" `Quick test_pa_chunking_large_input;
          Alcotest.test_case "avalanche" `Quick test_pa_differing_inputs_decorrelate;
        ] );
      ( "key-pool",
        [
          Alcotest.test_case "fifo" `Quick test_pool_fifo_order;
          Alcotest.test_case "split chunks" `Quick test_pool_split_chunks;
          Alcotest.test_case "exhausted atomic" `Quick test_pool_exhausted_atomic;
          Alcotest.test_case "counters" `Quick test_pool_counters;
          Alcotest.test_case "restore round-trip" `Quick test_pool_restore_round_trip;
          qcheck prop_pool_round_trip_and_conservation;
          Alcotest.test_case "many small chunks fast" `Quick
            test_pool_many_small_chunks_fast;
        ] );
      ( "auth",
        [
          Alcotest.test_case "lockstep" `Quick test_auth_tag_verify_in_lockstep;
          Alcotest.test_case "forgery" `Quick test_auth_detects_forgery;
          Alcotest.test_case "exhaustion" `Quick test_auth_exhaustion;
          Alcotest.test_case "replenish" `Quick test_auth_replenish_restores;
          Alcotest.test_case "counters" `Quick test_auth_counters;
        ] );
      ( "qframe-properties",
        [
          qcheck
            (QCheck.Test.make ~name:"qframe roundtrip (generated)" ~count:200
               QCheck.(pair (list (int_bound 3)) small_nat)
               (fun (symbols, seq) ->
                 let f =
                   {
                     Qframe.side = (if seq mod 2 = 0 then Qframe.Alice_frames else Qframe.Bob_frames);
                     seq;
                     first_slot = seq * 4096;
                     symbols = Array.of_list symbols;
                   }
                 in
                 Qframe.decode (Qframe.encode f) = f));
          qcheck
            (QCheck.Test.make ~name:"cascade disclosure monotone-ish in errors"
               ~count:15
               QCheck.(int_range 0 40)
               (fun epermille ->
                 (* disclosure at rate p never beats rate p + 4% by much *)
                 let p = float_of_int epermille /. 1000.0 in
                 let rng = Rng.create (Int64.of_int (epermille + 7)) in
                 let alice = Rng.bits rng 2048 in
                 let noisy q =
                   let bob = Bs.copy alice in
                   for i = 0 to 2047 do
                     if Rng.bernoulli rng q then Bs.flip bob i
                   done;
                   (Cascade.reconcile Cascade.default_config ~alice ~bob).Cascade.disclosed_bits
                 in
                 noisy p <= noisy (p +. 0.04) + 200));
        ] );
      ( "qframe",
        [
          Alcotest.test_case "roundtrip" `Quick test_qframe_roundtrip;
          Alcotest.test_case "crc" `Quick test_qframe_crc;
          Alcotest.test_case "covers link" `Quick test_qframe_covers_link;
          Alcotest.test_case "bob symbols" `Quick test_qframe_bob_symbols_match_detections;
          Alcotest.test_case "missing detection" `Quick test_qframe_missing_detection;
          Alcotest.test_case "bad symbol" `Quick test_qframe_bad_symbol;
        ] );
      ( "randomness",
        [
          Alcotest.test_case "fair bits pass" `Quick test_randomness_fair_bits_pass;
          Alcotest.test_case "biased bits fail" `Quick test_randomness_biased_bits_fail;
          Alcotest.test_case "constant fails" `Quick test_randomness_constant_fails_hard;
          Alcotest.test_case "alternating fails" `Quick test_randomness_alternating_fails;
          Alcotest.test_case "short tolerant" `Quick test_randomness_short_input_tolerant;
          Alcotest.test_case "bias measure" `Quick test_randomness_bias_measure;
          Alcotest.test_case "engine detects bias" `Slow test_randomness_engine_bias_detected;
        ] );
      ( "engine",
        [
          Alcotest.test_case "delivers key" `Slow test_engine_round_delivers_key;
          Alcotest.test_case "pools identical" `Slow test_engine_pools_identical;
          Alcotest.test_case "detects tampering" `Quick test_engine_detects_tampering;
          Alcotest.test_case "eve kills key" `Slow test_engine_eve_intercept_raises_qber_kills_key;
          Alcotest.test_case "auth exhaustion" `Quick test_engine_auth_exhaustion_without_yield;
          Alcotest.test_case "beamsplit accounting" `Slow test_engine_beamsplit_eve_knows_bits;
          Alcotest.test_case "parity baseline diverges" `Slow test_engine_parity_baseline_diverges;
          Alcotest.test_case "running qber estimate" `Slow test_engine_running_qber_estimate_helps;
          Alcotest.test_case "channel metered" `Slow test_engine_channel_bytes_metered;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "failed EC preserves qber chain" `Slow
            test_engine_failed_ec_preserves_qber_chain;
          Alcotest.test_case "zero-elapsed round guarded" `Slow
            test_engine_zero_elapsed_round_guarded;
          Alcotest.test_case "round counters reconcile" `Slow
            test_engine_round_counters_reconcile;
          qcheck prop_pipeline_bit_identical;
          Alcotest.test_case "aborted in-flight round commits nothing" `Slow
            test_pipeline_aborted_round_commits_nothing;
        ] );
    ]
