(* Tests for the PR 8 key-distribution service: tenant accounting that
   sums exactly to mesh pool spend (aborted leases conserve), hard
   quotas, weighted-fair queueing across QoS classes, per-edge shard
   decomposition, and the metro topology presets. *)

module Sim = Qkd_net.Sim
module Topology = Qkd_net.Topology
module Relay = Qkd_net.Relay
module Routing = Qkd_net.Routing
module Link = Qkd_photonics.Link
module Kms = Qkd_kms.Kms
module Qos = Qkd_kms.Qos
module Tenant = Qkd_kms.Tenant
module Shard = Qkd_kms.Shard
module Heap = Qkd_kms.Heap

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let qcheck = QCheck_alcotest.to_alcotest

(* Crank the trigger rate so pools fill in simulated seconds, not
   hours — the service logic under test is rate-agnostic. *)
let fast = { Link.darpa_default with Link.pulse_rate_hz = 1e8 }

let make ?(config = Kms.default_config) ?(fill_s = 2.0) topo =
  let sim = Sim.create () in
  let relay = Relay.create ~base_config:fast topo in
  Relay.advance relay ~seconds:fill_s;
  let kms = Kms.create ~config ~sim relay in
  (sim, relay, kms)

(* Drain the (a, b) pairwise pool down to [leave] bits before the KMS
   baseline snapshot, to stage scarcity. *)
let drain relay a b ~leave =
  let avail = int_of_float (Relay.pool_bits relay a b) in
  if avail > leave then
    match Relay.request_key relay ~src:a ~dst:b ~bits:(avail - leave) with
    | Ok _ -> ()
    | Error _ -> Alcotest.fail "drain request should succeed"

let chain3 () = Topology.chain ~n:1 ~kind:Topology.Trusted_relay ~fiber_km:10.0

(* -- Leases ---------------------------------------------------------- *)

let test_lease_commit_delivers () =
  let _, _, kms = make (chain3 ()) in
  let a = Kms.register kms ~name:"a" ~klass:Qos.Realtime ~src:0 ~dst:2 () in
  (match Kms.lease kms ~tenant:a ~bits:256 with
  | Error _ -> Alcotest.fail "lease should succeed on a filled chain"
  | Ok l ->
      let d = Kms.commit_lease kms l in
      check_int "full key" 256 (Qkd_util.Bitstring.length d.Relay.key);
      check_int "two hops" 3 (List.length d.Relay.path));
  let s = Kms.stats kms in
  check_int "delivered" 1 s.Kms.delivered;
  check_int "delivered bits" 256 s.Kms.delivered_bits;
  check_int "pad spend = bits x hops" 512 s.Kms.pad_spend_bits;
  check_int "drift is exactly zero" 0 s.Kms.accounting_drift_bits;
  check_int "shards agree" 512 (Shard.total_spent_bits (Kms.shards kms));
  let tn = Kms.tenant kms a in
  check_int "tenant bits" 256 tn.Tenant.delivered_bits;
  check_int "tenant pad spend" 512 tn.Tenant.pad_spend_bits;
  check_int "nothing in flight" 0 s.Kms.in_flight

let test_lease_release_restores_pools () =
  let _, relay, kms = make (chain3 ()) in
  let a = Kms.register kms ~name:"a" ~klass:Qos.Standard ~src:0 ~dst:2 () in
  let before01 = Relay.pool_bits relay 0 1 in
  let before12 = Relay.pool_bits relay 1 2 in
  (match Kms.lease kms ~tenant:a ~bits:512 with
  | Error _ -> Alcotest.fail "lease should succeed"
  | Ok l ->
      check "pads held while open" true (Relay.pool_bits relay 0 1 < before01);
      Kms.release_lease kms l;
      (* Exactly-once: a second resolution must be refused. *)
      check "double release refused" true
        (try
           Kms.release_lease kms l;
           false
         with Invalid_argument _ -> true));
  check "pool (0,1) restored exactly" true
    (Relay.pool_bits relay 0 1 = before01);
  check "pool (1,2) restored exactly" true
    (Relay.pool_bits relay 1 2 = before12);
  let s = Kms.stats kms in
  check_int "released" 1 s.Kms.released;
  check_int "spent nothing" 0 s.Kms.pad_spend_bits;
  check_int "drift is exactly zero" 0 s.Kms.accounting_drift_bits;
  let tn = Kms.tenant kms a in
  check_int "no reserved bits left" 0 tn.Tenant.reserved_bits;
  check_int "tenant released" 1 tn.Tenant.released

let test_quota_is_hard () =
  let sim, _, kms = make (chain3 ()) in
  let a =
    Kms.register kms ~name:"a" ~klass:Qos.Standard ~quota_bits:300 ~src:0
      ~dst:2 ()
  in
  (match Kms.lease kms ~tenant:a ~bits:256 with
  | Ok l -> ignore (Kms.commit_lease kms l)
  | Error _ -> Alcotest.fail "first lease fits the quota");
  (match Kms.lease kms ~tenant:a ~bits:256 with
  | Error Kms.Over_quota -> ()
  | Ok _ | Error _ -> Alcotest.fail "second lease must be over quota");
  Kms.submit kms ~tenant:a ~bits:256;
  Sim.run sim ~until:30.0;
  let s = Kms.stats kms in
  check_int "queued over-quota request rejected" 2 s.Kms.rejected;
  let tn = Kms.tenant kms a in
  check "quota never exceeded" true (tn.Tenant.delivered_bits <= 300)

(* -- Queued dispatch -------------------------------------------------- *)

let test_submit_delivers_via_sim () =
  let sim, _, kms = make (chain3 ()) in
  let a = Kms.register kms ~name:"a" ~klass:Qos.Realtime ~src:0 ~dst:2 () in
  for _ = 1 to 10 do
    Kms.submit kms ~tenant:a ~bits:128
  done;
  Sim.run sim ~until:5.0;
  let s = Kms.stats kms in
  check_int "all delivered" 10 s.Kms.delivered;
  check_int "queue drained" 0 s.Kms.queue_depth;
  check_int "drift is exactly zero" 0 s.Kms.accounting_drift_bits;
  check "p95 latency sampled" true
    (List.for_all
       (fun (c : Kms.class_stats) ->
         c.Kms.p95_latency_s >= 0.0 && c.Kms.p95_latency_s < 5.0)
       s.Kms.per_class)

let test_deadline_give_up_conserves () =
  let sim, relay, _ = make ~fill_s:2.0 (chain3 ()) in
  drain relay 0 1 ~leave:10;
  drain relay 1 2 ~leave:10;
  let kms = Kms.create ~sim relay in
  let a = Kms.register kms ~name:"a" ~klass:Qos.Realtime ~src:0 ~dst:2 () in
  Kms.submit kms ~tenant:a ~bits:256;
  Sim.run sim ~until:30.0;
  let s = Kms.stats kms in
  check_int "gave up" 1 s.Kms.gave_up;
  check_int "nothing delivered" 0 s.Kms.delivered;
  check_int "nothing in flight" 0 s.Kms.in_flight;
  check_int "drift is exactly zero" 0 s.Kms.accounting_drift_bits;
  check_int "no reserved bits left" 0 (Kms.tenant kms a).Tenant.reserved_bits

let test_retry_succeeds_after_refill () =
  let sim, relay, _ = make ~fill_s:2.0 (chain3 ()) in
  drain relay 0 1 ~leave:10;
  drain relay 1 2 ~leave:10;
  let kms = Kms.create ~sim relay in
  let a = Kms.register kms ~name:"a" ~klass:Qos.Bulk ~src:0 ~dst:2 () in
  Kms.submit kms ~tenant:a ~bits:256;
  (* Supply arrives while the request is backing off. *)
  Sim.schedule sim ~at:2.5 (fun () -> Kms.advance kms ~seconds:2.0);
  Sim.run sim ~until:60.0;
  let s = Kms.stats kms in
  check_int "delivered after retry" 1 s.Kms.delivered;
  check "retried at least once" true (s.Kms.retries >= 1);
  check_int "drift is exactly zero" 0 s.Kms.accounting_drift_bits

(* -- Fairness --------------------------------------------------------- *)

let test_jain_equal_weights_under_contention () =
  let topo = Topology.chain ~n:1 ~kind:Topology.Trusted_relay ~fiber_km:10.0 in
  let sim, relay, _ = make ~fill_s:2.0 topo in
  (* Stage scarcity: supply covers roughly half the aggregate demand. *)
  drain relay 0 1 ~leave:4096;
  drain relay 1 2 ~leave:4096;
  let kms = Kms.create ~sim relay in
  let tenants =
    List.init 8 (fun i ->
        Kms.register kms
          ~name:(Printf.sprintf "t%d" i)
          ~klass:Qos.Standard ~src:0 ~dst:2 ())
  in
  List.iter
    (fun id ->
      for _ = 1 to 8 do
        Kms.submit kms ~tenant:id ~bits:128
      done)
    tenants;
  Sim.run sim ~until:60.0;
  let s = Kms.stats kms in
  check "contention actually bites" true (s.Kms.gave_up > 0);
  check "some deliveries" true (s.Kms.delivered > 0);
  check "jain >= 0.9 with equal weights" true (s.Kms.jain_fairness >= 0.9);
  check_int "drift is exactly zero" 0 s.Kms.accounting_drift_bits

let test_wfq_class_weights_order_scarce_supply () =
  let topo = Topology.chain ~n:1 ~kind:Topology.Trusted_relay ~fiber_km:10.0 in
  let sim, relay, _ = make ~fill_s:2.0 topo in
  drain relay 0 1 ~leave:4096;
  drain relay 1 2 ~leave:4096;
  let kms = Kms.create ~sim relay in
  let rt = Kms.register kms ~name:"rt" ~klass:Qos.Realtime ~src:0 ~dst:2 () in
  let bk = Kms.register kms ~name:"bk" ~klass:Qos.Bulk ~src:0 ~dst:2 () in
  (* Bulk submits first: dispatch order must come from the WFQ finish
     tags, not arrival order. *)
  for _ = 1 to 30 do
    Kms.submit kms ~tenant:bk ~bits:128
  done;
  for _ = 1 to 30 do
    Kms.submit kms ~tenant:rt ~bits:128
  done;
  Sim.run sim ~until:90.0;
  let rt_bits = (Kms.tenant kms rt).Tenant.delivered_bits in
  let bk_bits = (Kms.tenant kms bk).Tenant.delivered_bits in
  check "realtime was served" true (rt_bits > 0);
  check "realtime outweighs bulk on scarce supply" true
    (rt_bits >= 2 * bk_bits);
  check_int "drift is exactly zero" 0
    (Kms.stats kms).Kms.accounting_drift_bits

(* -- Properties ------------------------------------------------------- *)

(* Random mixes of committed leases, released leases and queued
   requests: tenant accounting must sum exactly to the mesh's pool
   spend — aborted leases conserve bits exactly. *)
let prop_accounting_conserves =
  QCheck.Test.make ~name:"tenant accounting sums exactly to pool spend"
    ~count:40
    QCheck.(small_list (pair (int_bound 2) (int_range 1 300)))
    (fun ops ->
      let sim, _, kms = make (chain3 ()) in
      let a = Kms.register kms ~name:"a" ~klass:Qos.Standard ~src:0 ~dst:2 () in
      let b = Kms.register kms ~name:"b" ~klass:Qos.Bulk ~src:0 ~dst:1 () in
      List.iteri
        (fun i (action, bits) ->
          let id = if i mod 2 = 0 then a else b in
          match action with
          | 0 -> Kms.submit kms ~tenant:id ~bits
          | 1 -> (
              match Kms.lease kms ~tenant:id ~bits with
              | Ok l -> ignore (Kms.commit_lease kms l)
              | Error _ -> ())
          | _ -> (
              match Kms.lease kms ~tenant:id ~bits with
              | Ok l -> Kms.release_lease kms l
              | Error _ -> ()))
        ops;
      Sim.run sim ~until:120.0;
      let s = Kms.stats kms in
      let tenant_pad =
        List.fold_left
          (fun acc (tn : Tenant.t) -> acc + tn.Tenant.pad_spend_bits)
          0 (Kms.tenants kms)
      in
      s.Kms.in_flight = 0
      && s.Kms.accounting_drift_bits = 0
      && tenant_pad = s.Kms.pad_spend_bits
      && Shard.total_spent_bits (Kms.shards kms) = s.Kms.pad_spend_bits
      && s.Kms.submitted
         = s.Kms.delivered + s.Kms.rejected + s.Kms.shed + s.Kms.gave_up
           + s.Kms.released)

let prop_quota_never_exceeded =
  QCheck.Test.make ~name:"quota never exceeded" ~count:40
    QCheck.(pair (int_range 0 2000) (small_list (int_range 1 500)))
    (fun (quota, sizes) ->
      let sim, _, kms = make (chain3 ()) in
      let a =
        Kms.register kms ~name:"a" ~klass:Qos.Realtime ~quota_bits:quota
          ~src:0 ~dst:2 ()
      in
      List.iteri
        (fun i bits ->
          if i mod 2 = 0 then Kms.submit kms ~tenant:a ~bits
          else
            match Kms.lease kms ~tenant:a ~bits with
            | Ok l -> if i mod 4 = 1 then ignore (Kms.commit_lease kms l) else Kms.release_lease kms l
            | Error _ -> ())
        sizes;
      Sim.run sim ~until:60.0;
      let tn = Kms.tenant kms a in
      tn.Tenant.delivered_bits <= quota && tn.Tenant.reserved_bits = 0)

let prop_heap_pops_sorted =
  QCheck.Test.make ~name:"kms heap pops keys sorted, FIFO on ties" ~count:200
    QCheck.(small_list (int_bound 20))
    (fun keys ->
      let h = Heap.create () in
      List.iteri
        (fun i k -> Heap.push h ~key:(float_of_int k) (i, k))
        keys;
      let rec drain acc =
        match Heap.pop_min h with
        | None -> List.rev acc
        | Some (_, v) -> drain (v :: acc)
      in
      let popped = drain [] in
      let sorted =
        List.stable_sort
          (fun (_, k1) (_, k2) -> compare k1 k2)
          (List.mapi (fun i k -> (i, k)) keys)
      in
      popped = sorted && Heap.is_empty h)

(* -- Shards ----------------------------------------------------------- *)

let test_shard_decomposition () =
  let topo = Topology.chain ~n:2 ~kind:Topology.Trusted_relay ~fiber_km:10.0 in
  let _, _, kms = make topo in
  let a = Kms.register kms ~name:"a" ~klass:Qos.Standard ~src:0 ~dst:3 () in
  (match Kms.lease kms ~tenant:a ~bits:100 with
  | Ok l -> ignore (Kms.commit_lease kms l)
  | Error _ -> Alcotest.fail "lease should succeed");
  let shards = Kms.shards kms in
  check_int "three shards on a 3-hop chain" 3 (Shard.shard_count shards);
  List.iter
    (fun (x, y) ->
      match Shard.find shards x y with
      | Some sh -> check_int "each hop charged once" 100 sh.Shard.spent_bits
      | None -> Alcotest.fail "edge shard missing")
    [ (0, 1); (1, 2); (2, 3) ];
  check_int "decomposition sums" 300 (Shard.total_spent_bits shards)

let test_shard_refresh_tracks_refill () =
  let _, _, kms = make (chain3 ()) in
  let shards = Kms.shards kms in
  let before =
    match Shard.find shards 0 1 with
    | Some sh -> sh.Shard.refill_bits
    | None -> Alcotest.fail "shard missing"
  in
  Kms.advance kms ~seconds:1.0;
  match Shard.find shards 0 1 with
  | Some sh ->
      check "refill observed" true (sh.Shard.refill_bits > before);
      check "available positive" true (sh.Shard.available > 0)
  | None -> Alcotest.fail "shard missing after refresh"

(* -- Metro presets ---------------------------------------------------- *)

let test_metro_ring_of_rings () =
  let topo = Topology.metro_ring_of_rings ~fiber_km:20.0 () in
  (* 8 hubs + 8 rings x 8 locals + 8 x 4 endpoints. *)
  check_int "104 nodes" 104 (Topology.node_count topo);
  let endpoints =
    List.filter
      (fun (n : Topology.node) -> n.Topology.kind = Topology.Endpoint)
      (Topology.nodes topo)
  in
  check_int "32 endpoints" 32 (List.length endpoints);
  (* Any two endpoints in different rings are connected through the
     relay core. *)
  match endpoints with
  | e0 :: rest ->
      let far = List.nth rest (List.length rest - 1) in
      (match
         Routing.shortest_path topo ~src:e0.Topology.id ~dst:far.Topology.id
           ~weight:Routing.Hops
       with
      | Some path -> check "multi-hop metro path" true (List.length path >= 4)
      | None -> Alcotest.fail "metro mesh must connect endpoints")
  | [] -> Alcotest.fail "no endpoints"

let test_metro_hub_spoke () =
  let topo = Topology.metro_hub_spoke ~fiber_km:15.0 () in
  check_int "100 nodes" 100 (Topology.node_count topo);
  let sim, relay, _ = make ~fill_s:1.0 topo in
  let kms = Kms.create ~sim relay in
  (* First two spokes of hub 0 and hub 1: ids 4.. are endpoints. *)
  let a = Kms.register kms ~name:"a" ~klass:Qos.Realtime ~src:4 ~dst:29 () in
  match Kms.lease kms ~tenant:a ~bits:64 with
  | Ok l ->
      let d = Kms.commit_lease kms l in
      check "spoke-hub-hub-spoke" true (List.length d.Relay.path >= 3)
  | Error _ -> Alcotest.fail "hub-and-spoke lease should deliver"

(* -- Monitoring ------------------------------------------------------- *)

let test_monitor_smoke () =
  let sim, _, kms = make (chain3 ()) in
  let a = Kms.register kms ~name:"alpha" ~klass:Qos.Realtime ~src:0 ~dst:2 () in
  let monitor = Qkd_obs.Health.create () in
  Kms.install_monitor kms monitor;
  Kms.watch_tenant kms monitor a;
  for _ = 1 to 4 do
    Kms.submit kms ~tenant:a ~bits:128
  done;
  Sim.run sim ~until:5.0;
  Qkd_obs.Health.tick monitor ~now:5.0;
  (* Healthy run: deliveries at 100%, queue empty — nothing fires. *)
  let engine = Qkd_obs.Health.engine monitor in
  check "no backlog alert" false (Qkd_obs.Alert.is_firing engine "kms_backlog");
  check "no slo burn alert" false
    (Qkd_obs.Alert.is_firing engine "kms_delivery_slo_burn");
  check_int "delivered" 4 (Kms.stats kms).Kms.delivered

let () =
  Alcotest.run "qkd_kms"
    [
      ( "leases",
        [
          Alcotest.test_case "commit delivers and accounts" `Quick
            test_lease_commit_delivers;
          Alcotest.test_case "release restores pools exactly" `Quick
            test_lease_release_restores_pools;
          Alcotest.test_case "quota is hard" `Quick test_quota_is_hard;
        ] );
      ( "dispatch",
        [
          Alcotest.test_case "submit delivers via sim" `Quick
            test_submit_delivers_via_sim;
          Alcotest.test_case "deadline give-up conserves" `Quick
            test_deadline_give_up_conserves;
          Alcotest.test_case "retry succeeds after refill" `Quick
            test_retry_succeeds_after_refill;
        ] );
      ( "fairness",
        [
          Alcotest.test_case "jain >= 0.9 equal weights" `Quick
            test_jain_equal_weights_under_contention;
          Alcotest.test_case "class weights order scarce supply" `Quick
            test_wfq_class_weights_order_scarce_supply;
        ] );
      ( "properties",
        [
          qcheck prop_accounting_conserves;
          qcheck prop_quota_never_exceeded;
          qcheck prop_heap_pops_sorted;
        ] );
      ( "shards",
        [
          Alcotest.test_case "per-edge decomposition" `Quick
            test_shard_decomposition;
          Alcotest.test_case "refresh tracks refill" `Quick
            test_shard_refresh_tracks_refill;
        ] );
      ( "metro",
        [
          Alcotest.test_case "ring of rings" `Quick test_metro_ring_of_rings;
          Alcotest.test_case "hub and spoke" `Quick test_metro_hub_spoke;
        ] );
      ( "monitoring",
        [ Alcotest.test_case "monitor smoke" `Quick test_monitor_smoke ] );
    ]
