(* Tests for qkd_photonics: qubit encoding, sources, fiber loss,
   detectors, Eve models, and the composed link's physics. *)

module Qubit = Qkd_photonics.Qubit
module Pulse = Qkd_photonics.Pulse
module Source = Qkd_photonics.Source
module Fiber = Qkd_photonics.Fiber
module Detector = Qkd_photonics.Detector
module Eve = Qkd_photonics.Eve
module Timing = Qkd_photonics.Timing
module Stabilization = Qkd_photonics.Stabilization
module Link = Qkd_photonics.Link
module Rng = Qkd_util.Rng

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let checkf = Alcotest.(check (float 1e-9))

(* -- Qubit -- *)

let test_phase_encoding () =
  let half_pi = Float.pi /. 2.0 in
  checkf "basis0 value0" 0.0 (Qubit.alice_phase Qubit.Basis0 false);
  checkf "basis1 value0" half_pi (Qubit.alice_phase Qubit.Basis1 false);
  checkf "basis0 value1" Float.pi (Qubit.alice_phase Qubit.Basis0 true);
  checkf "basis1 value1" (3.0 *. half_pi) (Qubit.alice_phase Qubit.Basis1 true);
  checkf "bob basis0" 0.0 (Qubit.bob_phase Qubit.Basis0);
  checkf "bob basis1" half_pi (Qubit.bob_phase Qubit.Basis1)

let test_interference_law () =
  (* Delta = 0: all to D0; Delta = pi: all to D1; Delta = pi/2: 50/50 *)
  checkf "constructive D0" 0.0 (Qubit.detector_d1_probability ~visibility:1.0 ~delta:0.0);
  checkf "destructive D0" 1.0
    (Qubit.detector_d1_probability ~visibility:1.0 ~delta:Float.pi);
  Alcotest.(check (float 1e-6))
    "incompatible" 0.5
    (Qubit.detector_d1_probability ~visibility:1.0 ~delta:(Float.pi /. 2.0))

let test_visibility_softens_contrast () =
  let p = Qubit.detector_d1_probability ~visibility:0.9 ~delta:0.0 in
  checkf "error floor (1-V)/2" 0.05 p

let test_visibility_validation () =
  Alcotest.check_raises "V>1"
    (Invalid_argument "Qubit.detector_d1_probability: visibility out of range")
    (fun () -> ignore (Qubit.detector_d1_probability ~visibility:1.5 ~delta:0.0))

let test_random_basis_balanced () =
  let rng = Rng.create 1L in
  let n1 = ref 0 in
  for _ = 1 to 10_000 do
    if Qubit.basis_equal (Qubit.random_basis rng) Qubit.Basis1 then incr n1
  done;
  check "balanced" true (abs (!n1 - 5000) < 300)

(* -- Source -- *)

let test_source_poisson_stats () =
  let src = Source.weak_coherent ~mu:0.1 in
  let rng = Rng.create 2L in
  let n = 200_000 in
  let total = ref 0 and multi = ref 0 in
  for _ = 1 to n do
    let p = Source.emit src rng ~basis:Qubit.Basis0 ~value:false in
    total := !total + p.Pulse.photons;
    if p.Pulse.photons >= 2 then incr multi
  done;
  let mean = float_of_int !total /. float_of_int n in
  check "mean photon number" true (abs_float (mean -. 0.1) < 0.005);
  let p_multi = float_of_int !multi /. float_of_int n in
  check "multiphoton fraction" true
    (abs_float (p_multi -. Source.p_multiphoton src) < 0.002)

let test_source_probabilities () =
  let src = Source.weak_coherent ~mu:0.1 in
  Alcotest.(check (float 1e-9)) "p_nonvacuum" (1.0 -. exp (-0.1)) (Source.p_nonvacuum src);
  Alcotest.(check (float 1e-9))
    "p_multiphoton"
    (1.0 -. (exp (-0.1) *. 1.1))
    (Source.p_multiphoton src)

let test_source_validation () =
  Alcotest.check_raises "mu=0"
    (Invalid_argument "Source: mean photon number must be positive") (fun () ->
      ignore (Source.weak_coherent ~mu:0.0))

let test_source_encodes_phase () =
  let src = Source.weak_coherent ~mu:5.0 in
  let rng = Rng.create 3L in
  let p = Source.emit src rng ~basis:Qubit.Basis1 ~value:true in
  checkf "phase" (Qubit.alice_phase Qubit.Basis1 true) p.Pulse.phase

(* -- Fiber -- *)

let test_fiber_loss_budget () =
  let f = Fiber.make ~length_km:10.0 ~insertion_loss_db:3.0 () in
  checkf "loss" 5.0 (Fiber.total_loss_db f);
  Alcotest.(check (float 1e-9)) "transmittance" (10.0 ** -0.5) (Fiber.transmittance f)

let test_fiber_zero_length_lossless () =
  let f = Fiber.make ~length_km:0.0 () in
  checkf "transmittance 1" 1.0 (Fiber.transmittance f);
  let rng = Rng.create 4L in
  let p = { Pulse.photons = 5; phase = 0.0; basis = Qubit.Basis0; value = false } in
  check_int "all survive" 5 (Fiber.transmit f rng p).Pulse.photons

let test_fiber_thins_poissonian () =
  let f = Fiber.make ~length_km:15.05 () (* ~3 dB: T ~ 0.5 *) in
  let rng = Rng.create 5L in
  let survivors = ref 0 in
  let trials = 50_000 in
  for _ = 1 to trials do
    let p = { Pulse.photons = 2; phase = 0.0; basis = Qubit.Basis0; value = false } in
    survivors := !survivors + (Fiber.transmit f rng p).Pulse.photons
  done;
  let expected = 2.0 *. Fiber.transmittance f in
  let mean = float_of_int !survivors /. float_of_int trials in
  check "thinned mean" true (abs_float (mean -. expected) < 0.03)

let test_fiber_validation () =
  Alcotest.check_raises "negative" (Invalid_argument "Fiber.make: negative parameter")
    (fun () -> ignore (Fiber.make ~length_km:(-1.0) ()))

(* -- Detector -- *)

let perfect_detector =
  {
    Detector.efficiency = 1.0;
    dark_count_per_gate = 0.0;
    afterpulse_probability = 0.0;
    dead_time_gates = 0;
    visibility = 1.0;
    d1_efficiency_factor = 1.0;
  }

let pulse ~basis ~value ~photons =
  { Pulse.photons; phase = Qubit.alice_phase basis value; basis; value }

let test_detector_deterministic_when_compatible () =
  let d = Detector.create perfect_detector in
  let rng = Rng.create 6L in
  for _ = 1 to 100 do
    match
      Detector.detect d rng ~bob_basis:Qubit.Basis0
        (pulse ~basis:Qubit.Basis0 ~value:true ~photons:1)
    with
    | Detector.Click true -> ()
    | other -> Alcotest.failf "expected Click 1, got %a" Detector.pp_outcome other
  done

let test_detector_random_when_incompatible () =
  let d = Detector.create perfect_detector in
  let rng = Rng.create 7L in
  let ones = ref 0 in
  for _ = 1 to 10_000 do
    match
      Detector.detect d rng ~bob_basis:Qubit.Basis1
        (pulse ~basis:Qubit.Basis0 ~value:false ~photons:1)
    with
    | Detector.Click true -> incr ones
    | Detector.Click false -> ()
    | Detector.No_click | Detector.Double_click -> Alcotest.fail "lossless detector missed"
  done;
  check "50/50" true (abs (!ones - 5000) < 300)

let test_detector_vacuum_no_click () =
  let d = Detector.create perfect_detector in
  let rng = Rng.create 8L in
  for _ = 1 to 100 do
    match Detector.detect d rng ~bob_basis:Qubit.Basis0 Pulse.vacuum with
    | Detector.No_click -> ()
    | other -> Alcotest.failf "vacuum clicked: %a" Detector.pp_outcome other
  done

let test_detector_dark_counts () =
  let config = { perfect_detector with Detector.dark_count_per_gate = 0.01 } in
  let d = Detector.create config in
  let rng = Rng.create 9L in
  let clicks = ref 0 in
  let n = 100_000 in
  for _ = 1 to n do
    match Detector.detect d rng ~bob_basis:Qubit.Basis0 Pulse.vacuum with
    | Detector.No_click -> ()
    | Detector.Click _ | Detector.Double_click -> incr clicks
  done;
  (* two APDs at ~1% each; dead time after each click lowers the
     effective rate a bit below 2% *)
  let rate = float_of_int !clicks /. float_of_int n in
  check "dark rate" true (rate > 0.015 && rate < 0.022)

let test_detector_dead_time () =
  let config = { perfect_detector with Detector.dead_time_gates = 3 } in
  let d = Detector.create config in
  let rng = Rng.create 10L in
  let p = pulse ~basis:Qubit.Basis0 ~value:false ~photons:1 in
  (match Detector.detect d rng ~bob_basis:Qubit.Basis0 p with
  | Detector.Click false -> ()
  | _ -> Alcotest.fail "first click");
  for i = 1 to 3 do
    match Detector.detect d rng ~bob_basis:Qubit.Basis0 p with
    | Detector.No_click -> ()
    | _ -> Alcotest.failf "gate %d should be dead" i
  done;
  match Detector.detect d rng ~bob_basis:Qubit.Basis0 p with
  | Detector.Click false -> ()
  | _ -> Alcotest.fail "recovered gate should click"

let test_detector_double_click () =
  let d = Detector.create perfect_detector in
  let rng = Rng.create 11L in
  let doubles = ref 0 in
  for _ = 1 to 1000 do
    match
      Detector.detect d rng ~bob_basis:Qubit.Basis1
        (pulse ~basis:Qubit.Basis0 ~value:false ~photons:10)
    with
    | Detector.Double_click -> incr doubles
    | _ -> ()
  done;
  check "mostly doubles" true (!doubles > 900)

let test_detector_validation () =
  Alcotest.check_raises "bad efficiency"
    (Invalid_argument "Detector.validate: probability out of range") (fun () ->
      ignore (Detector.create { perfect_detector with Detector.efficiency = 1.5 }))

(* -- Eve -- *)

let test_eve_passive_transparent () =
  let eve = Eve.create Eve.Passive (Rng.create 12L) in
  let p = pulse ~basis:Qubit.Basis0 ~value:true ~photons:3 in
  let p' = Eve.tap eve ~slot:0 p in
  check "unchanged" true (p = p');
  check_int "knows nothing" 0 (Hashtbl.length (Eve.knowledge eve))

let test_eve_beamsplit_takes_one () =
  let eve = Eve.create Eve.Beamsplit (Rng.create 13L) in
  let p = pulse ~basis:Qubit.Basis0 ~value:true ~photons:3 in
  let p' = Eve.tap eve ~slot:5 p in
  check_int "one photon stolen" 2 p'.Pulse.photons;
  check_int "stored" 1 (Eve.stored_photons eve);
  let single = pulse ~basis:Qubit.Basis0 ~value:true ~photons:1 in
  let s' = Eve.tap eve ~slot:6 single in
  check_int "single untouched" 1 s'.Pulse.photons;
  check_int "still one stored" 1 (Eve.stored_photons eve)

let test_eve_intercept_full () =
  let eve = Eve.create (Eve.Intercept_resend 1.0) (Rng.create 14L) in
  let hits = ref 0 and total = 1000 in
  for slot = 0 to total - 1 do
    let p = pulse ~basis:Qubit.Basis0 ~value:true ~photons:1 in
    let p' = Eve.tap eve ~slot p in
    check_int "photon count preserved" 1 p'.Pulse.photons;
    if p'.Pulse.value = p.Pulse.value && Qubit.basis_equal p'.Pulse.basis p.Pulse.basis
    then incr hits
  done;
  check_int "all intercepted" total (Eve.intercepted eve);
  check "about half re-encoded faithfully" true (abs (!hits - 500) < 80)

let test_eve_intercept_fraction () =
  let eve = Eve.create (Eve.Intercept_resend 0.25) (Rng.create 15L) in
  for slot = 0 to 9_999 do
    ignore (Eve.tap eve ~slot (pulse ~basis:Qubit.Basis0 ~value:false ~photons:1))
  done;
  check "quarter intercepted" true (abs (Eve.intercepted eve - 2500) < 200)

let test_eve_breidbart_guess_rate () =
  let eve = Eve.create (Eve.Intercept_breidbart 1.0) (Rng.create 20L) in
  let correct = ref 0 and total = 10_000 in
  for slot = 0 to total - 1 do
    let p = pulse ~basis:Qubit.Basis0 ~value:(slot land 1 = 1) ~photons:1 in
    ignore (Eve.tap eve ~slot p);
    match Hashtbl.find_opt (Eve.knowledge eve) slot with
    | Some (Eve.Breidbart_guess g) -> if g = p.Pulse.value then incr correct
    | _ -> Alcotest.fail "no guess recorded"
  done;
  (* cos^2(pi/8) ~ 0.8536 *)
  let rate = float_of_int !correct /. float_of_int total in
  check "854 per mille" true (abs_float (rate -. 0.8536) < 0.02)

let test_eve_breidbart_induces_25pct_qber () =
  let config = { Link.darpa_default with Link.eve = Eve.Intercept_breidbart 1.0 } in
  let r = Link.run ~seed:120L config ~pulses:1_000_000 in
  let s = Qkd_protocol.Sifting.sift r in
  let q = Qkd_protocol.Sifting.qber s in
  (* same disturbance as naive intercept-resend: ~25% + link noise *)
  check "25%+noise" true (q > 0.24 && q < 0.36)

let test_eve_breidbart_knows_more_than_naive () =
  (* at equal disturbance, Breidbart harvests more bits *)
  let run strategy =
    let config = { Link.darpa_default with Link.eve = strategy } in
    let r = Link.run ~seed:121L config ~pulses:1_000_000 in
    let s = Qkd_protocol.Sifting.sift r in
    let known =
      Eve.bits_known r.Link.eve
        ~alice_basis:(Link.alice_basis r)
        ~alice_value:(Link.alice_value r)
        ~sifted_slots:(Array.to_list s.Qkd_protocol.Sifting.slots)
    in
    (known, Array.length s.Qkd_protocol.Sifting.slots)
  in
  let naive, n1 = run (Eve.Intercept_resend 1.0) in
  let breid, n2 = run (Eve.Intercept_breidbart 1.0) in
  let frac k n = float_of_int k /. float_of_int n in
  check "breidbart harvests more" true (frac breid n2 > frac naive n1 +. 0.05)

let test_eve_vacuum_not_intercepted () =
  let eve = Eve.create (Eve.Intercept_resend 1.0) (Rng.create 16L) in
  ignore (Eve.tap eve ~slot:0 Pulse.vacuum);
  check_int "nothing to measure" 0 (Eve.intercepted eve)

let test_eve_bad_fraction () =
  Alcotest.check_raises "f>1"
    (Invalid_argument "Eve.create: fraction must be within [0,1]") (fun () ->
      ignore (Eve.create (Eve.Intercept_resend 1.5) (Rng.create 17L)))

let test_eve_bits_known_accounting () =
  let eve = Eve.create Eve.Beamsplit (Rng.create 18L) in
  ignore (Eve.tap eve ~slot:3 (pulse ~basis:Qubit.Basis1 ~value:true ~photons:2));
  let known =
    Eve.bits_known eve
      ~alice_basis:(fun _ -> Qubit.Basis1)
      ~alice_value:(fun _ -> true)
      ~sifted_slots:[ 3; 4; 5 ]
  in
  check_int "stored photon counts once sifted" 1 known;
  let unknown =
    Eve.bits_known eve
      ~alice_basis:(fun _ -> Qubit.Basis1)
      ~alice_value:(fun _ -> true)
      ~sifted_slots:[ 4; 5 ]
  in
  check_int "unsifted slot invisible" 0 unknown

(* -- Timing -- *)

let test_timing_frames () =
  let t = Timing.make ~pulses_per_frame:100 () in
  check_int "slot 0" 0 (Timing.frame_of_slot t 0);
  check_int "slot 99" 0 (Timing.frame_of_slot t 99);
  check_int "slot 100" 1 (Timing.frame_of_slot t 100)

let test_timing_validation () =
  Alcotest.check_raises "zero frame"
    (Invalid_argument "Timing.make: frame size must be positive") (fun () ->
      ignore (Timing.make ~pulses_per_frame:0 ()))

let test_timing_loss_probability () =
  let t = Timing.make ~pulses_per_frame:10 ~frame_loss_probability:0.3 () in
  let rng = Rng.create 19L in
  let alive = ref 0 in
  for _ = 1 to 10_000 do
    if Timing.frame_alive t rng then incr alive
  done;
  check "70% alive" true (abs (!alive - 7000) < 300)

(* -- Stabilization -- *)

let test_stab_starts_aligned () =
  let s = Stabilization.create Stabilization.default in
  checkf "no phase error" 0.0 (Stabilization.phase_error s);
  checkf "full visibility" 1.0 (Stabilization.visibility_scale s)

let test_stab_drifts_without_servo () =
  let s = Stabilization.create Stabilization.uncontrolled in
  let rng = Rng.create 30L in
  for _ = 1 to 1000 do
    Stabilization.advance s rng ~dt:0.01
  done;
  (* after 10 s at 0.35 rad/sqrt(s) the walk is very unlikely near 0 *)
  check "phase wandered" true (abs_float (Stabilization.phase_error s) > 0.05);
  check_int "never corrected" 0 (Stabilization.corrections s)

let test_stab_servo_bounds_error () =
  let s = Stabilization.create Stabilization.default in
  let rng = Rng.create 31L in
  let worst = ref 0.0 in
  for _ = 1 to 10_000 do
    Stabilization.advance s rng ~dt:0.01;
    worst := Float.max !worst (abs_float (Stabilization.phase_error s))
  done;
  check "servo ran" true (Stabilization.corrections s > 900);
  (* between 10 Hz corrections the walk moves ~0.35*sqrt(0.1) ~ 0.11 rad *)
  check "error bounded" true (!worst < 0.8)

let test_stab_visibility_scale_range () =
  let s = Stabilization.create Stabilization.uncontrolled in
  let rng = Rng.create 32L in
  for _ = 1 to 1000 do
    Stabilization.advance s rng ~dt:0.05;
    let v = Stabilization.visibility_scale s in
    check "in [0,1]" true (v >= 0.0 && v <= 1.0)
  done

let test_stab_validation () =
  Alcotest.check_raises "negative"
    (Invalid_argument "Stabilization.validate: negative parameter") (fun () ->
      ignore
        (Stabilization.create
           { Stabilization.default with Stabilization.control_residual_rad = -1.0 }))

let test_stab_link_qber_ramps_without_servo () =
  let drifting =
    { Link.darpa_default with Link.stabilization = Some Stabilization.uncontrolled }
  in
  let r = Link.run ~seed:77L drifting ~pulses:3_000_000 in
  (* compare error rate in the first vs last third of the run *)
  let s = Qkd_protocol.Sifting.sift r in
  let rate lo hi =
    let e = ref 0 and n = ref 0 in
    Array.iteri
      (fun j slot ->
        if slot >= lo && slot < hi then begin
          incr n;
          if
            Qkd_util.Bitstring.get s.Qkd_protocol.Sifting.alice_bits j
            <> Qkd_util.Bitstring.get s.Qkd_protocol.Sifting.bob_bits j
          then incr e
        end)
      s.Qkd_protocol.Sifting.slots;
    float_of_int !e /. float_of_int (max 1 !n)
  in
  check "late much worse than early" true
    (rate 2_000_000 3_000_000 > rate 0 1_000_000 +. 0.05)

let test_stab_link_servo_holds_band () =
  let servoed =
    { Link.darpa_default with Link.stabilization = Some Stabilization.default }
  in
  let r = Link.run ~seed:78L servoed ~pulses:2_000_000 in
  let s = Qkd_protocol.Sifting.sift r in
  let q = Qkd_protocol.Sifting.qber s in
  check "stays near band" true (q > 0.04 && q < 0.11)

(* -- Link -- *)

let measure_qber (r : Link.result) =
  let sifted = ref 0 and errors = ref 0 in
  Array.iter
    (fun (d : Link.detection) ->
      match d.Link.outcome with
      | Detector.Click v
        when Qubit.basis_equal d.Link.bob_basis (Link.alice_basis r d.Link.slot) ->
          incr sifted;
          if v <> Link.alice_value r d.Link.slot then incr errors
      | _ -> ())
    r.Link.detections;
  (!sifted, float_of_int !errors /. float_of_int (max 1 !sifted))

let test_link_darpa_operating_point () =
  let r = Link.run ~seed:100L Link.darpa_default ~pulses:1_000_000 in
  let sifted, qber = measure_qber r in
  check "qber in band" true (qber > 0.045 && qber < 0.095);
  let rate = float_of_int sifted /. r.Link.elapsed_s in
  check "sifted rate order 1kb/s" true (rate > 800.0 && rate < 3200.0)

let test_link_textbook_detection_rate () =
  let r = Link.run ~seed:101L Link.textbook_example ~pulses:200_000 in
  let rate = Link.detection_rate r in
  check "about 1%" true (rate > 0.008 && rate < 0.013)

let test_link_intercept_resend_qber () =
  let config = { Link.darpa_default with Link.eve = Eve.Intercept_resend 1.0 } in
  let r = Link.run ~seed:102L config ~pulses:1_000_000 in
  let _, qber = measure_qber r in
  check "25%+noise" true (qber > 0.24 && qber < 0.36)

let test_link_longer_fiber_fewer_detections () =
  let near = Link.run ~seed:103L Link.darpa_default ~pulses:300_000 in
  let far_cfg =
    {
      Link.darpa_default with
      Link.fiber = Fiber.make ~length_km:50.0 ~insertion_loss_db:3.0 ();
    }
  in
  let far = Link.run ~seed:103L far_cfg ~pulses:300_000 in
  check "loss reduces rate" true (Link.detection_rate far < Link.detection_rate near /. 2.0)

let test_link_frame_loss_drops_detections () =
  let lossy =
    {
      Link.darpa_default with
      Link.timing = Timing.make ~pulses_per_frame:1000 ~frame_loss_probability:0.5 ();
    }
  in
  let r = Link.run ~seed:104L lossy ~pulses:200_000 in
  check "frames lost" true (r.Link.frames_lost > 60 && r.Link.frames_lost < 140);
  let full = Link.run ~seed:104L Link.darpa_default ~pulses:200_000 in
  check "fewer detections" true
    (Array.length r.Link.detections < Array.length full.Link.detections)

let test_link_detections_sorted_and_valid () =
  let r = Link.run ~seed:105L Link.darpa_default ~pulses:100_000 in
  let last = ref (-1) in
  Array.iter
    (fun (d : Link.detection) ->
      check "ascending slots" true (d.Link.slot > !last);
      last := d.Link.slot;
      check "slot in range" true (d.Link.slot >= 0 && d.Link.slot < 100_000);
      match d.Link.outcome with
      | Detector.No_click -> Alcotest.fail "No_click recorded"
      | Detector.Click _ | Detector.Double_click -> ())
    r.Link.detections

let test_link_deterministic_by_seed () =
  let a = Link.run ~seed:106L Link.darpa_default ~pulses:50_000 in
  let b = Link.run ~seed:106L Link.darpa_default ~pulses:50_000 in
  check_int "same detections" (Array.length a.Link.detections)
    (Array.length b.Link.detections);
  check "same bases" true (Qkd_util.Bitstring.equal a.Link.alice_bases b.Link.alice_bases)

let test_link_research_grade_cleaner () =
  let darpa = Link.run ~seed:107L Link.darpa_default ~pulses:500_000 in
  let research = Link.run ~seed:107L Link.research_grade ~pulses:500_000 in
  let _, q_darpa = measure_qber darpa in
  let _, q_research = measure_qber research in
  check "research grade lower qber" true (q_research < q_darpa /. 2.0)

let test_link_entangled_coincidence_penalty () =
  (* entangled: Alice must detect her half too, so the sifted yield is
     ~eta times the weak-coherent link's *)
  let wcp = Link.run ~seed:108L Link.darpa_default ~pulses:500_000 in
  let ent = Link.run ~seed:108L Link.entangled_default ~pulses:500_000 in
  let sifted r = Array.length (Qkd_protocol.Sifting.sift r).Qkd_protocol.Sifting.slots in
  check "alice_detected sparse" true
    (Qkd_util.Bitstring.popcount ent.Link.alice_detected < 500_000 / 2);
  check "coincidence penalty" true (sifted ent * 4 < sifted wcp)

let test_link_wcp_alice_always_detected () =
  let r = Link.run ~seed:109L Link.darpa_default ~pulses:10_000 in
  check_int "all slots owned" 10_000 (Qkd_util.Bitstring.popcount r.Link.alice_detected)

let test_link_entangled_low_qber () =
  (* coincidences are post-selected on Alice detecting, so the
     entangled link's QBER is no worse than the WCP link's *)
  let ent = Link.run ~seed:110L Link.entangled_default ~pulses:2_000_000 in
  let s = Qkd_protocol.Sifting.sift ent in
  let q = Qkd_protocol.Sifting.qber s in
  check "entangled qber sane" true (q < 0.11)

let test_link_invalid_pulses () =
  Alcotest.check_raises "zero pulses"
    (Invalid_argument "Link.run: pulses must be positive") (fun () ->
      ignore (Link.run Link.darpa_default ~pulses:0))

(* -- Link fast path: the batched kernel's determinism contract -- *)

let same_result (a : Link.result) (b : Link.result) =
  Qkd_util.Bitstring.equal a.Link.alice_bases b.Link.alice_bases
  && Qkd_util.Bitstring.equal a.Link.alice_values b.Link.alice_values
  && Qkd_util.Bitstring.equal a.Link.alice_detected b.Link.alice_detected
  && a.Link.detections = b.Link.detections
  && a.Link.frames_lost = b.Link.frames_lost
  && a.Link.gated_pulses = b.Link.gated_pulses

(* Sharding across domains must not change a single bit: every frame
   draws from its own [Rng.derive] stream and results merge in frame
   order, so the domain count is pure execution policy. *)
let check_domain_invariance ?(pulses = 50_000) ?(seeds = [ 1L; 7L ]) config =
  List.iter
    (fun seed ->
      let base =
        Link.run ~seed ~mode:(Link.Batched { domains = 1 }) config ~pulses
      in
      List.iter
        (fun domains ->
          let r = Link.run ~seed ~mode:(Link.Batched { domains }) config ~pulses in
          check
            (Printf.sprintf "seed %Ld x%d domains bit-identical" seed domains)
            true (same_result base r);
          check
            (Printf.sprintf "seed %Ld x%d eve state" seed domains)
            true
            (Eve.intercepted r.Link.eve = Eve.intercepted base.Link.eve
            && Eve.stored_photons r.Link.eve = Eve.stored_photons base.Link.eve
            && Hashtbl.length (Eve.knowledge r.Link.eve)
               = Hashtbl.length (Eve.knowledge base.Link.eve)))
        [ 2; 3; 4 ])
    seeds

let test_fastpath_domains_darpa () = check_domain_invariance Link.darpa_default

let test_fastpath_domains_frame_loss () =
  (* odd frame size (not a multiple of 8) exercises the unaligned merge
     path; heavy frame loss exercises the gating bookkeeping *)
  check_domain_invariance
    {
      Link.darpa_default with
      Link.timing =
        Timing.make ~pulses_per_frame:37 ~frame_loss_probability:0.3 ();
    }

let test_fastpath_domains_entangled () =
  check_domain_invariance Link.entangled_default

let test_fastpath_domains_stabilized () =
  check_domain_invariance
    {
      Link.darpa_default with
      Link.stabilization = Some Stabilization.default;
    }

let test_fastpath_domains_eve () =
  check_domain_invariance
    { Link.darpa_default with Link.eve = Eve.Intercept_resend 0.5 }

let test_fastpath_partial_last_frame () =
  (* pulses not a multiple of the frame size: last frame is short *)
  let config =
    { Link.darpa_default with Link.timing = Timing.make ~pulses_per_frame:64 () }
  in
  check_domain_invariance ~pulses:1000 config;
  let r = Link.run ~seed:3L config ~pulses:1000 in
  check_int "all pulses recorded" 1000
    (Qkd_util.Bitstring.length r.Link.alice_bases)

let test_fastpath_more_domains_than_frames () =
  let config =
    { Link.darpa_default with Link.timing = Timing.make ~pulses_per_frame:512 () }
  in
  (* 2 frames, 8 requested domains: must clamp, not crash or diverge *)
  let a = Link.run ~seed:5L ~mode:(Link.Batched { domains = 1 }) config ~pulses:1024 in
  let b = Link.run ~seed:5L ~mode:(Link.Batched { domains = 8 }) config ~pulses:1024 in
  check "clamped domains bit-identical" true (same_result a b)

let test_fastpath_gated_pulses () =
  let config =
    {
      Link.darpa_default with
      Link.timing =
        Timing.make ~pulses_per_frame:100 ~frame_loss_probability:0.25 ();
    }
  in
  let pulses = 40_000 in
  let r = Link.run ~seed:11L config ~pulses in
  (* pulses is a multiple of the frame size, so gating is exact *)
  check_int "gated = pulses - lost frames x frame size"
    (pulses - (r.Link.frames_lost * 100))
    r.Link.gated_pulses;
  check "some frames lost" true (r.Link.frames_lost > 0);
  check "rates ordered" true
    (Link.detection_rate r >= Link.raw_detection_rate r);
  let no_loss = Link.run ~seed:11L Link.darpa_default ~pulses in
  check_int "no frame loss: gated = emitted" pulses no_loss.Link.gated_pulses;
  checkf "no frame loss: rates equal"
    (Link.detection_rate no_loss)
    (Link.raw_detection_rate no_loss)

(* The reference loop and the batched kernel draw randomness in
   different orders, so they agree statistically, not bit-for-bit:
   same operating point within Monte Carlo tolerance. *)
let test_fastpath_reference_equivalence () =
  let pulses = 400_000 in
  let ref_r = Link.run ~seed:17L ~mode:Link.Reference Link.darpa_default ~pulses in
  let bat_r =
    Link.run ~seed:17L ~mode:(Link.Batched { domains = 2 }) Link.darpa_default
      ~pulses
  in
  let rate_ref = Link.detection_rate ref_r in
  let rate_bat = Link.detection_rate bat_r in
  check "detection rates agree" true
    (abs_float (rate_ref -. rate_bat) /. rate_ref < 0.15);
  let _, qber_ref = measure_qber ref_r in
  let _, qber_bat = measure_qber bat_r in
  check "qber band agrees" true (abs_float (qber_ref -. qber_bat) < 0.03)

let test_fastpath_reference_equivalence_eve () =
  let config =
    { Link.darpa_default with Link.eve = Eve.Intercept_resend 1.0 }
  in
  let pulses = 400_000 in
  let ref_r = Link.run ~seed:23L ~mode:Link.Reference config ~pulses in
  let bat_r =
    Link.run ~seed:23L ~mode:(Link.Batched { domains = 2 }) config ~pulses
  in
  let _, qber_ref = measure_qber ref_r in
  let _, qber_bat = measure_qber bat_r in
  (* full intercept-resend: both must sit at the ~25% QBER signature *)
  check "reference sees eve" true (qber_ref > 0.18 && qber_ref < 0.32);
  check "batched sees eve" true (qber_bat > 0.18 && qber_bat < 0.32);
  let frac r = float_of_int (Eve.intercepted r.Link.eve) /. float_of_int pulses in
  check "intercept volumes agree" true
    (abs_float (frac ref_r -. frac bat_r) < 0.02)

let () =
  Alcotest.run "qkd_photonics"
    [
      ( "qubit",
        [
          Alcotest.test_case "phase encoding" `Quick test_phase_encoding;
          Alcotest.test_case "interference law" `Quick test_interference_law;
          Alcotest.test_case "visibility" `Quick test_visibility_softens_contrast;
          Alcotest.test_case "visibility validation" `Quick test_visibility_validation;
          Alcotest.test_case "random basis balanced" `Quick test_random_basis_balanced;
        ] );
      ( "source",
        [
          Alcotest.test_case "poisson stats" `Quick test_source_poisson_stats;
          Alcotest.test_case "probabilities" `Quick test_source_probabilities;
          Alcotest.test_case "validation" `Quick test_source_validation;
          Alcotest.test_case "encodes phase" `Quick test_source_encodes_phase;
        ] );
      ( "fiber",
        [
          Alcotest.test_case "loss budget" `Quick test_fiber_loss_budget;
          Alcotest.test_case "lossless" `Quick test_fiber_zero_length_lossless;
          Alcotest.test_case "thins" `Quick test_fiber_thins_poissonian;
          Alcotest.test_case "validation" `Quick test_fiber_validation;
        ] );
      ( "detector",
        [
          Alcotest.test_case "compatible deterministic" `Quick
            test_detector_deterministic_when_compatible;
          Alcotest.test_case "incompatible random" `Quick test_detector_random_when_incompatible;
          Alcotest.test_case "vacuum silent" `Quick test_detector_vacuum_no_click;
          Alcotest.test_case "dark counts" `Quick test_detector_dark_counts;
          Alcotest.test_case "dead time" `Quick test_detector_dead_time;
          Alcotest.test_case "double click" `Quick test_detector_double_click;
          Alcotest.test_case "validation" `Quick test_detector_validation;
        ] );
      ( "eve",
        [
          Alcotest.test_case "passive" `Quick test_eve_passive_transparent;
          Alcotest.test_case "beamsplit" `Quick test_eve_beamsplit_takes_one;
          Alcotest.test_case "intercept full" `Quick test_eve_intercept_full;
          Alcotest.test_case "intercept fraction" `Quick test_eve_intercept_fraction;
          Alcotest.test_case "breidbart guess rate" `Quick test_eve_breidbart_guess_rate;
          Alcotest.test_case "breidbart qber" `Slow test_eve_breidbart_induces_25pct_qber;
          Alcotest.test_case "breidbart harvests more" `Slow test_eve_breidbart_knows_more_than_naive;
          Alcotest.test_case "vacuum skipped" `Quick test_eve_vacuum_not_intercepted;
          Alcotest.test_case "bad fraction" `Quick test_eve_bad_fraction;
          Alcotest.test_case "bits_known" `Quick test_eve_bits_known_accounting;
        ] );
      ( "timing",
        [
          Alcotest.test_case "frames" `Quick test_timing_frames;
          Alcotest.test_case "validation" `Quick test_timing_validation;
          Alcotest.test_case "loss probability" `Quick test_timing_loss_probability;
        ] );
      ( "stabilization",
        [
          Alcotest.test_case "starts aligned" `Quick test_stab_starts_aligned;
          Alcotest.test_case "drifts without servo" `Quick test_stab_drifts_without_servo;
          Alcotest.test_case "servo bounds error" `Quick test_stab_servo_bounds_error;
          Alcotest.test_case "visibility range" `Quick test_stab_visibility_scale_range;
          Alcotest.test_case "validation" `Quick test_stab_validation;
          Alcotest.test_case "qber ramps unservoed" `Slow test_stab_link_qber_ramps_without_servo;
          Alcotest.test_case "servo holds band" `Slow test_stab_link_servo_holds_band;
        ] );
      ( "link",
        [
          Alcotest.test_case "darpa operating point" `Slow test_link_darpa_operating_point;
          Alcotest.test_case "textbook detection" `Quick test_link_textbook_detection_rate;
          Alcotest.test_case "intercept-resend qber" `Slow test_link_intercept_resend_qber;
          Alcotest.test_case "loss reduces rate" `Quick test_link_longer_fiber_fewer_detections;
          Alcotest.test_case "frame loss" `Quick test_link_frame_loss_drops_detections;
          Alcotest.test_case "detections valid" `Quick test_link_detections_sorted_and_valid;
          Alcotest.test_case "deterministic" `Quick test_link_deterministic_by_seed;
          Alcotest.test_case "research grade" `Quick test_link_research_grade_cleaner;
          Alcotest.test_case "entangled coincidences" `Quick test_link_entangled_coincidence_penalty;
          Alcotest.test_case "wcp alice detected" `Quick test_link_wcp_alice_always_detected;
          Alcotest.test_case "entangled qber" `Slow test_link_entangled_low_qber;
          Alcotest.test_case "invalid pulses" `Quick test_link_invalid_pulses;
        ] );
      ( "link fast path",
        [
          Alcotest.test_case "domains invariant: darpa" `Quick
            test_fastpath_domains_darpa;
          Alcotest.test_case "domains invariant: frame loss" `Quick
            test_fastpath_domains_frame_loss;
          Alcotest.test_case "domains invariant: entangled" `Quick
            test_fastpath_domains_entangled;
          Alcotest.test_case "domains invariant: stabilized" `Quick
            test_fastpath_domains_stabilized;
          Alcotest.test_case "domains invariant: eve" `Quick
            test_fastpath_domains_eve;
          Alcotest.test_case "partial last frame" `Quick
            test_fastpath_partial_last_frame;
          Alcotest.test_case "more domains than frames" `Quick
            test_fastpath_more_domains_than_frames;
          Alcotest.test_case "gated pulses" `Quick test_fastpath_gated_pulses;
          Alcotest.test_case "reference equivalence" `Slow
            test_fastpath_reference_equivalence;
          Alcotest.test_case "reference equivalence with eve" `Slow
            test_fastpath_reference_equivalence_eve;
        ] );
    ]
