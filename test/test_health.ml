(* End-to-end health monitoring: the eavesdropper alarm's determinism
   (an intercept-resend run fires the QBER rule, a clean run on the
   same seed stays silent), the churn SLO cross-check (the alert
   engine's windowed attainment equals the scheduler's exact
   delivered/submitted counts), and causal trace propagation from a
   scheduler submission down through the relay. *)

module Registry = Qkd_obs.Registry
module Alert = Qkd_obs.Alert
module Health = Qkd_obs.Health
module Trace = Qkd_obs.Trace
module Engine = Qkd_protocol.Engine
module Link = Qkd_photonics.Link
module Eve = Qkd_photonics.Eve
module Topology = Qkd_net.Topology
module Relay = Qkd_net.Relay
module Sim = Qkd_net.Sim
module Scheduler = Qkd_net.Scheduler
module Failure = Qkd_net.Failure

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let contains hay needle =
  let len = String.length hay and n = String.length needle in
  let rec scan i = i + n <= len && (String.sub hay i n = needle || scan (i + 1)) in
  scan 0

(* -- eavesdropper alarm -- *)

let qber_alarm_fires eve =
  let r = Registry.create () in
  Registry.with_registry r (fun () ->
      let base = Engine.default_config in
      let config =
        { base with Engine.link = { base.Engine.link with Link.eve } }
      in
      let engine = Engine.create ~seed:2003L config in
      let monitor = Health.default () in
      Health.tick monitor ~now:0.0;
      for i = 1 to 4 do
        ignore (Engine.run_round engine ~pulses:50_000);
        Health.tick monitor ~now:(float_of_int i)
      done;
      Alert.is_firing (Health.engine monitor) "qber_above_budget")

let test_qber_alarm_separates () =
  check "intercept-resend fires the alarm" true
    (qber_alarm_fires (Eve.Intercept_resend 1.0));
  check "clean run on the same seed stays silent" false
    (qber_alarm_fires Eve.Passive)

(* -- churn SLO cross-check -- *)

let churn ~scheduler =
  let r = Registry.create () in
  Registry.with_registry r (fun () ->
      let topo =
        Topology.random_mesh ~nodes:8 ~degree:3.0 ~seed:9L ~fiber_km:10.0
      in
      let relay = Relay.create ~low_watermark:1024 ~high_watermark:100_000 topo in
      Relay.advance relay ~seconds:20.0;
      let cfg =
        {
          Failure.default_churn_config with
          Failure.pairs = [ (0, 7); (1, 6) ];
          duration_s = 60.0;
          mtbf_s = 45.0;
          mttr_s = 15.0;
          request_bits = 256;
          request_interval_s = 0.5;
          scheduler;
        }
      in
      Failure.churn ~seed:11L relay cfg)

let check_slo_exact (r : Failure.churn_report) =
  check "saw traffic" true (r.Failure.submitted > 0);
  let exact =
    float_of_int r.Failure.delivered /. float_of_int r.Failure.submitted
  in
  check "alert-engine attainment equals delivered/submitted exactly" true
    (r.Failure.slo_attainment = exact);
  check "attainment equals delivery_ratio" true
    (r.Failure.slo_attainment = r.Failure.delivery_ratio)

let test_churn_slo_resilient () =
  check_slo_exact (churn ~scheduler:(Some Scheduler.default_config))

let test_churn_slo_baseline () = check_slo_exact (churn ~scheduler:None)

(* -- causal trace propagation -- *)

let test_scheduler_trace_tree () =
  let r = Registry.create () in
  Registry.with_registry r @@ fun () ->
  let topo = Topology.chain ~n:3 ~kind:Topology.Trusted_relay ~fiber_km:5.0 in
  let relay = Relay.create ~low_watermark:1024 ~high_watermark:100_000 topo in
  Relay.advance relay ~seconds:30.0;
  let sim = Sim.create () in
  let sched = Scheduler.create ~sim relay in
  let tracer = Trace.tracer_create () in
  Trace.with_tracer tracer (fun () ->
      Scheduler.submit sched ~src:0 ~dst:2 ~bits:128;
      Sim.run sim ~until:40.0);
  let spans = Trace.spans ~tracer () in
  let root =
    match List.find_opt (fun s -> s.Trace.name = "sched_request") spans with
    | Some s -> s
    | None -> Alcotest.fail "no sched_request root span recorded"
  in
  check "root has no parent" true (root.Trace.parent = None);
  check "root finished" true root.Trace.finished;
  check "outcome noted on the root" true
    (List.assoc_opt "outcome" root.Trace.notes = Some "delivered");
  check "src noted" true (List.assoc_opt "src" root.Trace.notes = Some "0");
  let attempts = List.filter (fun s -> s.Trace.name = "attempt") spans in
  check "at least one attempt span" true (attempts <> []);
  List.iter
    (fun a ->
      check "attempt parented to the request" true
        (a.Trace.parent = Some root.Trace.id))
    attempts;
  let delivered =
    List.find_opt
      (fun a -> List.assoc_opt "relay" a.Trace.notes = Some "delivered")
      attempts
  in
  (match delivered with
  | Some a ->
      check "delivering attempt records the path" true
        (List.assoc_opt "path" a.Trace.notes <> None)
  | None -> Alcotest.fail "no attempt carries the relay delivery note");
  let json = Trace.export_chrome ~tracer () in
  check "chrome export names the request" true (contains json "sched_request");
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  Trace.pp_tree ~tracer () ppf;
  Format.pp_print_flush ppf ();
  check "text tree names the attempt" true (contains (Buffer.contents buf) "attempt")

(* -- alert edge cases: the state machine under adversarial inputs --

   A monitor wired from mutable refs: each test drives the series by
   hand and asserts the exact state-machine behaviour at the edges —
   values sitting exactly on thresholds, undecidable evaluations
   during for_s holds, empty burn-rate windows, and the bounded
   transition log. *)

let ref_monitor ?max_events () =
  let m = Health.create ?max_events () in
  let v = ref 0.0 in
  ignore (Health.watch_fn m "gauge" (fun () -> !v));
  (m, v)

let test_exact_threshold_no_flap () =
  let m, v = ref_monitor () in
  Health.add_rule m
    {
      Alert.name = "at_limit";
      severity = Alert.Warning;
      message = "";
      for_s = 0.0;
      kind =
        Alert.Threshold
          { series = "gauge"; window_s = 1.0; condition = Alert.Above 1.0 };
    };
  (* sitting exactly ON the limit is not a breach: Above is strict,
     so a gauge pinned at the threshold must never flap *)
  v := 1.0;
  for i = 0 to 19 do
    Health.tick m ~now:(float_of_int i)
  done;
  check "exactly at the limit never fires" false
    (Alert.is_firing (Health.engine m) "at_limit");
  check_int "no transitions logged at the exact threshold" 0
    (List.length (Alert.log (Health.engine m)));
  (* strictly above fires; returning to the exact limit resolves *)
  v := 1.0001;
  Health.tick m ~now:20.0;
  check "strictly above fires" true
    (Alert.is_firing (Health.engine m) "at_limit");
  v := 1.0;
  Health.tick m ~now:21.0;
  Health.tick m ~now:22.0;
  check "back at the limit resolves" false
    (Alert.is_firing (Health.engine m) "at_limit");
  check_int "exactly one fire/resolve pair" 2
    (List.length (Alert.log (Health.engine m)))

let test_for_s_hold_across_undecidable_gaps () =
  let m = Health.create () in
  let num = ref 0.0 and den = ref 0.0 in
  ignore (Health.watch_fn m "num" (fun () -> !num));
  ignore (Health.watch_fn m "den" (fun () -> !den));
  Health.add_rule m
    {
      Alert.name = "held";
      severity = Alert.Critical;
      message = "";
      for_s = 10.0;
      kind =
        Alert.Ratio
          {
            num = "num";
            den = "den";
            window_s = 2.0;
            condition = Alert.Above 0.5;
            min_den = 10.0;
            z = None;
          };
    };
  let engine = Health.engine m in
  Health.tick m ~now:0.0;
  (* decidable breach at t=1 starts the hold *)
  num := 100.0;
  den := 100.0;
  Health.tick m ~now:1.0;
  check "breach enters Pending, not Firing (for_s hold)" true
    (Alert.state engine "held" = Some (Alert.Pending 1.0));
  (* no traffic for a while: the 2 s window sees Δden = 0, the rule is
     undecidable — the hold must neither fire, reset nor resolve *)
  for i = 3 to 9 do
    Health.tick m ~now:(float_of_int i)
  done;
  check "undecidable gap leaves the Pending hold untouched" true
    (Alert.state engine "held" = Some (Alert.Pending 1.0));
  (* decidable breach again at t=12: held since t=1, 11 s >= for_s *)
  num := 200.0;
  den := 200.0;
  Health.tick m ~now:11.0;
  Health.tick m ~now:12.0;
  check "fires once the hold elapses across the gap" true
    (Alert.is_firing engine "held");
  (match Alert.state engine "held" with
  | Some (Alert.Firing since) ->
      check "hold measured from the original breach" true (since >= 11.0)
  | _ -> Alcotest.fail "expected Firing state")

let test_burn_rate_empty_window () =
  let m = Health.create () in
  let good = ref 0.0 and total = ref 0.0 in
  ignore (Health.watch_fn m "good" (fun () -> !good));
  ignore (Health.watch_fn m "total" (fun () -> !total));
  Health.add_rule m
    {
      Alert.name = "burn";
      severity = Alert.Critical;
      message = "";
      for_s = 0.0;
      kind =
        Alert.Burn_rate
          {
            good = "good";
            total = "total";
            objective = 0.9;
            window_s = 2.0;
            max_burn = 1.0;
          };
    };
  let engine = Health.engine m in
  (* empty series: no decision, state Ok, nothing logged *)
  Health.tick m ~now:0.0;
  check "no burn decision before any traffic" true
    (Alert.state engine "burn" = Some Alert.Ok);
  (* failing traffic fires *)
  total := 10.0;
  Health.tick m ~now:1.0;
  check "total failure burns past budget" true (Alert.is_firing engine "burn");
  (* traffic stops entirely: Δtotal = 0 over the window — undecidable,
     the alert must stay latched rather than silently resolve *)
  for i = 3 to 8 do
    Health.tick m ~now:(float_of_int i)
  done;
  check "empty window leaves the burn alert firing" true
    (Alert.is_firing engine "burn");
  check_int "no spurious resolve during the quiet spell" 1
    (List.length (Alert.log engine));
  (* healthy traffic resumes and resolves it *)
  good := !good +. 100.0;
  total := !total +. 100.0;
  Health.tick m ~now:9.0;
  Health.tick m ~now:10.0;
  check "healthy traffic resolves" false (Alert.is_firing engine "burn")

let test_event_log_bounding () =
  let m, v = ref_monitor ~max_events:4 () in
  Health.add_rule m
    {
      Alert.name = "toggler";
      severity = Alert.Info;
      message = "";
      for_s = 0.0;
      kind =
        Alert.Threshold
          { series = "gauge"; window_s = 0.5; condition = Alert.Above 1.0 };
    };
  for i = 0 to 39 do
    (v := if i mod 2 = 0 then 2.0 else 0.0);
    Health.tick m ~now:(float_of_int i)
  done;
  let engine = Health.engine m in
  let events = Alert.log engine in
  check_int "log bounded at max_events" 4 (List.length events);
  check_int "fired_count stays exact across trimming" 20
    (Alert.fired_count engine);
  (match List.rev events with
  | newest :: _ ->
      check "newest events are the ones retained" true (newest.Alert.at >= 36.0)
  | [] -> Alcotest.fail "empty log");
  (* dump/restore round-trips the bounded log and the exact counter *)
  let d = Alert.dump engine in
  let m2, _ = ref_monitor ~max_events:4 () in
  Health.add_rule m2
    {
      Alert.name = "toggler";
      severity = Alert.Info;
      message = "";
      for_s = 0.0;
      kind =
        Alert.Threshold
          { series = "gauge"; window_s = 0.5; condition = Alert.Above 1.0 };
    };
  Alert.restore (Health.engine m2) d;
  check_int "restored fired_count" 20 (Alert.fired_count (Health.engine m2));
  check "restored log equal" true (Alert.log (Health.engine m2) = events)

(* -- default monitor wiring -- *)

let test_default_monitor_reports () =
  let r = Registry.create () in
  Registry.with_registry r @@ fun () ->
  let monitor = Health.default () in
  let engine = Engine.create ~seed:2003L Engine.default_config in
  Health.tick monitor ~now:0.0;
  ignore (Engine.run_round engine ~pulses:100_000);
  Health.tick monitor ~now:1.0;
  check_int "no alerts on a clean round" 0
    (List.length (Alert.firing (Health.engine monitor)));
  let buf = Buffer.create 512 in
  let ppf = Format.formatter_of_buffer buf in
  Health.pp_report monitor ~now:1.0 ppf;
  Format.pp_print_flush ppf ();
  let report = Buffer.contents buf in
  check "report shows all-clear" true (contains report "all clear");
  check "report lists the sifted series" true
    (contains report "protocol_sifted_bits_total")

let () =
  Alcotest.run "qkd_health"
    [
      ( "alarms",
        [
          Alcotest.test_case "eavesdropper alarm separates" `Slow
            test_qber_alarm_separates;
          Alcotest.test_case "default monitor clean report" `Slow
            test_default_monitor_reports;
        ] );
      ( "alert edge cases",
        [
          Alcotest.test_case "exact threshold never flaps" `Quick
            test_exact_threshold_no_flap;
          Alcotest.test_case "for_s hold across undecidable gaps" `Quick
            test_for_s_hold_across_undecidable_gaps;
          Alcotest.test_case "burn rate over empty windows" `Quick
            test_burn_rate_empty_window;
          Alcotest.test_case "event log bounding" `Quick
            test_event_log_bounding;
        ] );
      ( "slo",
        [
          Alcotest.test_case "churn slo exact (resilient)" `Slow
            test_churn_slo_resilient;
          Alcotest.test_case "churn slo exact (baseline)" `Slow
            test_churn_slo_baseline;
        ] );
      ( "tracing",
        [
          Alcotest.test_case "scheduler trace tree" `Quick
            test_scheduler_trace_tree;
        ] );
    ]
