(* End-to-end health monitoring: the eavesdropper alarm's determinism
   (an intercept-resend run fires the QBER rule, a clean run on the
   same seed stays silent), the churn SLO cross-check (the alert
   engine's windowed attainment equals the scheduler's exact
   delivered/submitted counts), and causal trace propagation from a
   scheduler submission down through the relay. *)

module Registry = Qkd_obs.Registry
module Alert = Qkd_obs.Alert
module Health = Qkd_obs.Health
module Trace = Qkd_obs.Trace
module Engine = Qkd_protocol.Engine
module Link = Qkd_photonics.Link
module Eve = Qkd_photonics.Eve
module Topology = Qkd_net.Topology
module Relay = Qkd_net.Relay
module Sim = Qkd_net.Sim
module Scheduler = Qkd_net.Scheduler
module Failure = Qkd_net.Failure

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let contains hay needle =
  let len = String.length hay and n = String.length needle in
  let rec scan i = i + n <= len && (String.sub hay i n = needle || scan (i + 1)) in
  scan 0

(* -- eavesdropper alarm -- *)

let qber_alarm_fires eve =
  let r = Registry.create () in
  Registry.with_registry r (fun () ->
      let base = Engine.default_config in
      let config =
        { base with Engine.link = { base.Engine.link with Link.eve } }
      in
      let engine = Engine.create ~seed:2003L config in
      let monitor = Health.default () in
      Health.tick monitor ~now:0.0;
      for i = 1 to 4 do
        ignore (Engine.run_round engine ~pulses:50_000);
        Health.tick monitor ~now:(float_of_int i)
      done;
      Alert.is_firing (Health.engine monitor) "qber_above_budget")

let test_qber_alarm_separates () =
  check "intercept-resend fires the alarm" true
    (qber_alarm_fires (Eve.Intercept_resend 1.0));
  check "clean run on the same seed stays silent" false
    (qber_alarm_fires Eve.Passive)

(* -- churn SLO cross-check -- *)

let churn ~scheduler =
  let r = Registry.create () in
  Registry.with_registry r (fun () ->
      let topo =
        Topology.random_mesh ~nodes:8 ~degree:3.0 ~seed:9L ~fiber_km:10.0
      in
      let relay = Relay.create ~low_watermark:1024 ~high_watermark:100_000 topo in
      Relay.advance relay ~seconds:20.0;
      let cfg =
        {
          Failure.default_churn_config with
          Failure.pairs = [ (0, 7); (1, 6) ];
          duration_s = 60.0;
          mtbf_s = 45.0;
          mttr_s = 15.0;
          request_bits = 256;
          request_interval_s = 0.5;
          scheduler;
        }
      in
      Failure.churn ~seed:11L relay cfg)

let check_slo_exact (r : Failure.churn_report) =
  check "saw traffic" true (r.Failure.submitted > 0);
  let exact =
    float_of_int r.Failure.delivered /. float_of_int r.Failure.submitted
  in
  check "alert-engine attainment equals delivered/submitted exactly" true
    (r.Failure.slo_attainment = exact);
  check "attainment equals delivery_ratio" true
    (r.Failure.slo_attainment = r.Failure.delivery_ratio)

let test_churn_slo_resilient () =
  check_slo_exact (churn ~scheduler:(Some Scheduler.default_config))

let test_churn_slo_baseline () = check_slo_exact (churn ~scheduler:None)

(* -- causal trace propagation -- *)

let test_scheduler_trace_tree () =
  let r = Registry.create () in
  Registry.with_registry r @@ fun () ->
  let topo = Topology.chain ~n:3 ~kind:Topology.Trusted_relay ~fiber_km:5.0 in
  let relay = Relay.create ~low_watermark:1024 ~high_watermark:100_000 topo in
  Relay.advance relay ~seconds:30.0;
  let sim = Sim.create () in
  let sched = Scheduler.create ~sim relay in
  let tracer = Trace.tracer_create () in
  Trace.with_tracer tracer (fun () ->
      Scheduler.submit sched ~src:0 ~dst:2 ~bits:128;
      Sim.run sim ~until:40.0);
  let spans = Trace.spans ~tracer () in
  let root =
    match List.find_opt (fun s -> s.Trace.name = "sched_request") spans with
    | Some s -> s
    | None -> Alcotest.fail "no sched_request root span recorded"
  in
  check "root has no parent" true (root.Trace.parent = None);
  check "root finished" true root.Trace.finished;
  check "outcome noted on the root" true
    (List.assoc_opt "outcome" root.Trace.notes = Some "delivered");
  check "src noted" true (List.assoc_opt "src" root.Trace.notes = Some "0");
  let attempts = List.filter (fun s -> s.Trace.name = "attempt") spans in
  check "at least one attempt span" true (attempts <> []);
  List.iter
    (fun a ->
      check "attempt parented to the request" true
        (a.Trace.parent = Some root.Trace.id))
    attempts;
  let delivered =
    List.find_opt
      (fun a -> List.assoc_opt "relay" a.Trace.notes = Some "delivered")
      attempts
  in
  (match delivered with
  | Some a ->
      check "delivering attempt records the path" true
        (List.assoc_opt "path" a.Trace.notes <> None)
  | None -> Alcotest.fail "no attempt carries the relay delivery note");
  let json = Trace.export_chrome ~tracer () in
  check "chrome export names the request" true (contains json "sched_request");
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  Trace.pp_tree ~tracer () ppf;
  Format.pp_print_flush ppf ();
  check "text tree names the attempt" true (contains (Buffer.contents buf) "attempt")

(* -- default monitor wiring -- *)

let test_default_monitor_reports () =
  let r = Registry.create () in
  Registry.with_registry r @@ fun () ->
  let monitor = Health.default () in
  let engine = Engine.create ~seed:2003L Engine.default_config in
  Health.tick monitor ~now:0.0;
  ignore (Engine.run_round engine ~pulses:100_000);
  Health.tick monitor ~now:1.0;
  check_int "no alerts on a clean round" 0
    (List.length (Alert.firing (Health.engine monitor)));
  let buf = Buffer.create 512 in
  let ppf = Format.formatter_of_buffer buf in
  Health.pp_report monitor ~now:1.0 ppf;
  Format.pp_print_flush ppf ();
  let report = Buffer.contents buf in
  check "report shows all-clear" true (contains report "all clear");
  check "report lists the sifted series" true
    (contains report "protocol_sifted_bits_total")

let () =
  Alcotest.run "qkd_health"
    [
      ( "alarms",
        [
          Alcotest.test_case "eavesdropper alarm separates" `Slow
            test_qber_alarm_separates;
          Alcotest.test_case "default monitor clean report" `Slow
            test_default_monitor_reports;
        ] );
      ( "slo",
        [
          Alcotest.test_case "churn slo exact (resilient)" `Slow
            test_churn_slo_resilient;
          Alcotest.test_case "churn slo exact (baseline)" `Slow
            test_churn_slo_baseline;
        ] );
      ( "tracing",
        [
          Alcotest.test_case "scheduler trace tree" `Quick
            test_scheduler_trace_tree;
        ] );
    ]
