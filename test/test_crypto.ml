(* Tests for qkd_crypto: GF(2^n), ciphers and hashes against published
   vectors, universal hashing, bignum/DH, PRF. *)

module Gf2 = Qkd_crypto.Gf2
module Aes = Qkd_crypto.Aes
module Des = Qkd_crypto.Des
module Sha1 = Qkd_crypto.Sha1
module Sha256 = Qkd_crypto.Sha256
module Hmac = Qkd_crypto.Hmac
module Otp = Qkd_crypto.Otp
module Uh = Qkd_crypto.Universal_hash
module Bignum = Qkd_crypto.Bignum
module Dh = Qkd_crypto.Dh
module Prf = Qkd_crypto.Prf
module Bs = Qkd_util.Bitstring
module Rng = Qkd_util.Rng
module Hex = Qkd_util.Hex

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)
let hex b = Hex.encode b
let qcheck = QCheck_alcotest.to_alcotest

(* -- Gf2.Poly -- *)

let test_poly_of_terms_degree () =
  let p = Gf2.Poly.of_terms [ 5; 2; 0 ] in
  check_int "degree" 5 (Gf2.Poly.degree p);
  check_int "zero degree" (-1) (Gf2.Poly.degree Gf2.Poly.zero)

let test_poly_add_self_cancels () =
  let p = Gf2.Poly.of_terms [ 7; 3; 1 ] in
  check "p + p = 0" true (Gf2.Poly.is_zero (Gf2.Poly.add p p))

let test_poly_mul_known () =
  (* (x+1)(x+1) = x^2+1 over GF(2) *)
  let xp1 = Gf2.Poly.of_terms [ 1; 0 ] in
  check "square" true
    (Gf2.Poly.equal (Gf2.Poly.mul xp1 xp1) (Gf2.Poly.of_terms [ 2; 0 ]));
  (* (x^2+x)(x+1) = x^3+x *)
  check "product" true
    (Gf2.Poly.equal
       (Gf2.Poly.mul (Gf2.Poly.of_terms [ 2; 1 ]) xp1)
       (Gf2.Poly.of_terms [ 3; 1 ]))

let test_poly_mul_zero_one () =
  let p = Gf2.Poly.of_terms [ 9; 4 ] in
  check "x*0" true (Gf2.Poly.is_zero (Gf2.Poly.mul p Gf2.Poly.zero));
  check "x*1" true (Gf2.Poly.equal p (Gf2.Poly.mul p Gf2.Poly.one))

let test_poly_square_matches_mul () =
  let rng = Rng.create 21L in
  for _ = 1 to 20 do
    let p = Gf2.Poly.of_bitstring (Rng.bits rng 200) in
    check "square = mul self" true
      (Gf2.Poly.equal (Gf2.Poly.square p) (Gf2.Poly.mul p p))
  done

let test_poly_rem () =
  (* x^3 mod (x^2+1) = x (since x^3 = x(x^2+1) + x) *)
  let r = Gf2.Poly.rem (Gf2.Poly.of_terms [ 3 ]) (Gf2.Poly.of_terms [ 2; 0 ]) in
  check "x^3 mod x^2+1" true (Gf2.Poly.equal r (Gf2.Poly.of_terms [ 1 ]))

let test_poly_rem_by_zero () =
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (Gf2.Poly.rem Gf2.Poly.one Gf2.Poly.zero))

let test_poly_gcd () =
  (* gcd(x^2+1, x+1) = x+1 over GF(2) since x^2+1 = (x+1)^2 *)
  let g = Gf2.Poly.gcd (Gf2.Poly.of_terms [ 2; 0 ]) (Gf2.Poly.of_terms [ 1; 0 ]) in
  check "gcd" true (Gf2.Poly.equal g (Gf2.Poly.of_terms [ 1; 0 ]))

let test_irreducible_small () =
  (* x^2+x+1 irreducible; x^2+1 = (x+1)^2 reducible; x^4+x+1
     irreducible; x^4+x^2+1 = (x^2+x+1)^2 reducible. *)
  check "x2+x+1" true (Gf2.Poly.is_irreducible (Gf2.Poly.of_terms [ 2; 1; 0 ]));
  check "x2+1" false (Gf2.Poly.is_irreducible (Gf2.Poly.of_terms [ 2; 0 ]));
  check "x4+x+1" true (Gf2.Poly.is_irreducible (Gf2.Poly.of_terms [ 4; 1; 0 ]));
  check "x4+x2+1" false (Gf2.Poly.is_irreducible (Gf2.Poly.of_terms [ 4; 2; 0 ]))

let test_known_moduli_irreducible () =
  (* Re-verify a sample of the built-in table with the Rabin test
     (the full table takes minutes; these cover the common sizes). *)
  List.iter
    (fun n ->
      let terms = List.assoc n Gf2.known_moduli in
      check
        (Printf.sprintf "degree %d" n)
        true
        (Gf2.Poly.is_irreducible (Gf2.Poly.of_terms terms)))
    [ 32; 64; 96; 128; 160; 256 ]

let test_find_modulus () =
  let terms = Gf2.find_modulus 20 in
  check_int "degree" 20 (List.hd terms);
  check "irreducible" true (Gf2.Poly.is_irreducible (Gf2.Poly.of_terms terms))

let test_field_mul_commutative_associative () =
  let f = Gf2.Field.create 64 in
  let rng = Rng.create 31L in
  for _ = 1 to 20 do
    let a = Gf2.Field.element_of_bits f (Rng.bits rng 64) in
    let b = Gf2.Field.element_of_bits f (Rng.bits rng 64) in
    let c = Gf2.Field.element_of_bits f (Rng.bits rng 64) in
    check "comm" true
      (Gf2.Poly.equal (Gf2.Field.mul f a b) (Gf2.Field.mul f b a));
    check "assoc" true
      (Gf2.Poly.equal
         (Gf2.Field.mul f (Gf2.Field.mul f a b) c)
         (Gf2.Field.mul f a (Gf2.Field.mul f b c)));
    check "distrib" true
      (Gf2.Poly.equal
         (Gf2.Field.mul f a (Gf2.Field.add b c))
         (Gf2.Field.add (Gf2.Field.mul f a b) (Gf2.Field.mul f a c)))
  done

let test_field_element_roundtrip () =
  let f = Gf2.Field.create 96 in
  let rng = Rng.create 32L in
  let bits = Rng.bits rng 96 in
  let e = Gf2.Field.element_of_bits f bits in
  check "roundtrip" true (Bs.equal bits (Gf2.Field.bits_of_element f e))

let test_field_too_many_bits () =
  let f = Gf2.Field.create 32 in
  Alcotest.check_raises "33 bits"
    (Invalid_argument "Gf2.Field.element_of_bits: too many bits") (fun () ->
      ignore (Gf2.Field.element_of_bits f (Bs.create 33)))

(* -- SHA-1 / SHA-256 / HMAC: FIPS and RFC vectors -- *)

let test_sha1_vectors () =
  check_str "abc" "a9993e364706816aba3e25717850c26c9cd0d89d"
    (hex (Sha1.digest_string "abc"));
  check_str "empty" "da39a3ee5e6b4b0d3255bfef95601890afd80709"
    (hex (Sha1.digest_string ""));
  check_str "two blocks" "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
    (hex (Sha1.digest_string "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))

let test_sha1_incremental () =
  let ctx = Sha1.init () in
  let data = Bytes.of_string "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq" in
  (* Feed in awkward pieces to cross block boundaries. *)
  Sha1.feed ctx data ~pos:0 ~len:10;
  Sha1.feed ctx data ~pos:10 ~len:37;
  Sha1.feed ctx data ~pos:47 ~len:(Bytes.length data - 47);
  check_str "incremental" "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
    (hex (Sha1.finalize ctx))

let test_sha1_million_a () =
  let chunk = Bytes.make 1000 'a' in
  let ctx = Sha1.init () in
  for _ = 1 to 1000 do
    Sha1.feed ctx chunk ~pos:0 ~len:1000
  done;
  check_str "million a" "34aa973cd4c4daa4f61eeb2bdbad27316534016f" (hex (Sha1.finalize ctx))

let test_sha1_finalize_twice () =
  let ctx = Sha1.init () in
  ignore (Sha1.finalize ctx);
  Alcotest.check_raises "reuse" (Invalid_argument "Sha1.finalize: context finalised")
    (fun () -> ignore (Sha1.finalize ctx))

let test_sha256_vectors () =
  check_str "abc" "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
    (hex (Sha256.digest_string "abc"));
  check_str "empty" "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
    (hex (Sha256.digest_string ""));
  check_str "two blocks"
    "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
    (hex (Sha256.digest_string "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))

let test_hmac_sha1_rfc2202 () =
  check_str "case 1" "b617318655057264e28bc0b6fb378c8ef146be00"
    (hex (Hmac.mac ~hash:Hmac.SHA1 ~key:(Bytes.make 20 '\x0b') (Bytes.of_string "Hi There")));
  check_str "case 2" "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79"
    (hex
       (Hmac.mac ~hash:Hmac.SHA1 ~key:(Bytes.of_string "Jefe")
          (Bytes.of_string "what do ya want for nothing?")));
  (* long key (80 bytes) forces the key-hash path *)
  check_str "case 6" "aa4ae5e15272d00e95705637ce8a3b55ed402112"
    (hex
       (Hmac.mac ~hash:Hmac.SHA1 ~key:(Bytes.make 80 '\xaa')
          (Bytes.of_string "Test Using Larger Than Block-Size Key - Hash Key First")))

let test_hmac_sha256_rfc4231 () =
  check_str "case 1"
    "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
    (hex (Hmac.mac ~hash:Hmac.SHA256 ~key:(Bytes.make 20 '\x0b') (Bytes.of_string "Hi There")))

let test_hmac_verify () =
  let key = Bytes.of_string "secret" in
  let msg = Bytes.of_string "message" in
  let tag = Hmac.mac_96 ~hash:Hmac.SHA1 ~key msg in
  check "verifies" true (Hmac.verify ~hash:Hmac.SHA1 ~key ~tag msg);
  check "rejects" false (Hmac.verify ~hash:Hmac.SHA1 ~key ~tag (Bytes.of_string "Message"))

(* -- AES: FIPS-197 / SP 800-38A vectors -- *)

let test_aes_fips197 () =
  let pt = Hex.decode "00112233445566778899aabbccddeeff" in
  let cases =
    [
      ("000102030405060708090a0b0c0d0e0f", "69c4e0d86a7b0430d8cdb78070b4c55a");
      ("000102030405060708090a0b0c0d0e0f1011121314151617", "dda97ca4864cdfe06eaf70a0ec0d7191");
      ( "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f",
        "8ea2b7ca516745bfeafc49904b496089" );
    ]
  in
  List.iter
    (fun (k, expect) ->
      let key = Aes.expand_key (Hex.decode k) in
      let ct = Aes.encrypt_block key pt in
      check_str ("enc " ^ k) expect (hex ct);
      check_str ("dec " ^ k) (hex pt) (hex (Aes.decrypt_block key ct)))
    cases

let test_aes_cbc_roundtrip () =
  let key = Aes.expand_key (Hex.decode "2b7e151628aed2a6abf7158809cf4f3c") in
  let iv = Hex.decode "000102030405060708090a0b0c0d0e0f" in
  let pt = Bytes.of_string "The DARPA Quantum Network delivers keys" in
  let ct = Aes.encrypt_cbc key ~iv pt in
  check "ct differs" false (Bytes.equal ct pt);
  check "roundtrip" true (Bytes.equal pt (Aes.decrypt_cbc key ~iv ct));
  check_int "padded to blocks" 0 (Bytes.length ct mod 16)

let test_aes_cbc_sp800_38a () =
  (* SP 800-38A F.2.1 CBC-AES128, first block *)
  let key = Aes.expand_key (Hex.decode "2b7e151628aed2a6abf7158809cf4f3c") in
  let iv = Hex.decode "000102030405060708090a0b0c0d0e0f" in
  let pt = Hex.decode "6bc1bee22e409f96e93d7e117393172a" in
  let ct = Aes.encrypt_cbc key ~iv pt in
  check_str "first block" "7649abac8119b246cee98e9b12e9197d" (hex (Bytes.sub ct 0 16))

let test_aes_ctr_involution () =
  let key = Aes.expand_key (Hex.decode "2b7e151628aed2a6abf7158809cf4f3c") in
  let nonce = Hex.decode "f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff" in
  let pt = Bytes.of_string "counter mode is its own inverse, any length" in
  let ct = Aes.ctr key ~nonce pt in
  check "roundtrip" true (Bytes.equal pt (Aes.ctr key ~nonce ct))

let test_aes_ctr_sp800_38a () =
  (* SP 800-38A F.5.1 CTR-AES128, first block *)
  let key = Aes.expand_key (Hex.decode "2b7e151628aed2a6abf7158809cf4f3c") in
  let nonce = Hex.decode "f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff" in
  let pt = Hex.decode "6bc1bee22e409f96e93d7e117393172a" in
  check_str "ctr block" "874d6191b620e3261bef6864990db6ce" (hex (Aes.ctr key ~nonce pt))

let test_aes_bad_key () =
  Alcotest.check_raises "15 bytes"
    (Invalid_argument "Aes.expand_key: key must be 16, 24 or 32 bytes") (fun () ->
      ignore (Aes.expand_key (Bytes.create 15)))

let test_aes_bad_padding () =
  let key = Aes.expand_key (Bytes.make 16 'k') in
  let iv = Bytes.make 16 'i' in
  Alcotest.check_raises "garbage ct" (Invalid_argument "Aes: bad padding") (fun () ->
      ignore (Aes.decrypt_cbc key ~iv (Bytes.make 16 '\x00')))

(* -- DES / 3DES -- *)

let test_des_classic_vector () =
  let key = Des.des_key (Hex.decode "133457799bbcdff1") in
  let ct = Des.encrypt_block key (Hex.decode "0123456789abcdef") in
  check_str "encrypt" "85e813540f0ab405" (hex ct);
  check_str "decrypt" "0123456789abcdef" (hex (Des.decrypt_block key ct))

let test_des_weak_key_property () =
  (* All-zero key (weak): E(E(x)) = x. *)
  let key = Des.des_key (Bytes.make 8 '\000') in
  let pt = Hex.decode "0123456789abcdef" in
  check "involution" true
    (Bytes.equal pt (Des.encrypt_block key (Des.encrypt_block key pt)))

let test_3des_degenerates_to_des () =
  (* K1 = K2 = K3 makes EDE equal to single DES. *)
  let k = Hex.decode "133457799bbcdff1" in
  let tdes = Des.ede3_key (Bytes.concat Bytes.empty [ k; k; k ]) in
  let des = Des.des_key k in
  let pt = Hex.decode "0123456789abcdef" in
  check "matches single DES" true
    (Bytes.equal (Des.encrypt_block des pt) (Des.encrypt_block tdes pt))

let test_3des_cbc_roundtrip () =
  let key = Des.ede3_key (Qkd_util.Rng.bytes (Rng.create 77L) 24) in
  let iv = Bytes.make 8 'v' in
  let pt = Bytes.of_string "three keys walk into a Feistel network" in
  check "roundtrip" true (Bytes.equal pt (Des.decrypt_cbc key ~iv (Des.encrypt_cbc key ~iv pt)))

let test_des_complement_property () =
  (* DES(~k, ~p) = ~DES(k, p) *)
  let knot b = Bytes.map (fun c -> Char.chr (lnot (Char.code c) land 0xFF)) b in
  let kraw = Hex.decode "133457799bbcdff1" in
  let p = Hex.decode "0123456789abcdef" in
  let c1 = Des.encrypt_block (Des.des_key kraw) p in
  let c2 = Des.encrypt_block (Des.des_key (knot kraw)) (knot p) in
  check "complement" true (Bytes.equal (knot c1) c2)

(* -- OTP -- *)

let test_otp_roundtrip () =
  let rng = Rng.create 41L in
  let bits = Rng.bits rng 512 in
  let pa = Otp.pad_of_bits (Bs.copy bits) in
  let pb = Otp.pad_of_bits bits in
  let msg = Bytes.of_string "pad me" in
  let ct = Otp.encrypt pa msg in
  check "ct differs" false (Bytes.equal ct msg);
  check "decrypts" true (Bytes.equal msg (Otp.decrypt pb ct));
  check_int "both consumed" (512 - 48) (Otp.remaining pa);
  check_int "sync" (Otp.remaining pa) (Otp.remaining pb)

let test_otp_exhaustion_atomic () =
  let pad = Otp.pad_of_bits (Rng.bits (Rng.create 42L) 40) in
  Alcotest.check_raises "exhausted" Otp.Exhausted (fun () ->
      ignore (Otp.encrypt pad (Bytes.of_string "too long message")));
  (* failed encryption must not consume pad *)
  check_int "untouched" 40 (Otp.remaining pad)

let test_otp_refill () =
  let pad = Otp.pad_of_bits (Rng.bits (Rng.create 43L) 8) in
  Otp.refill pad (Rng.bits (Rng.create 44L) 8);
  check_int "refilled" 16 (Otp.remaining pad);
  ignore (Otp.encrypt pad (Bytes.of_string "ab"));
  check_int "consumed across chunks" 0 (Otp.remaining pad)

(* -- Universal hashing -- *)

let test_pa_round_up () =
  check_int "1" 32 (Uh.pa_round_up 1);
  check_int "32" 32 (Uh.pa_round_up 32);
  check_int "33" 64 (Uh.pa_round_up 33);
  check_int "1000" 1024 (Uh.pa_round_up 1000)

let test_pa_agreement () =
  let rng = Rng.create 51L in
  let x = Rng.bits rng 700 in
  let params = Uh.pa_choose rng ~input_len:700 ~m:300 in
  let y1 = Uh.pa_apply params x in
  let y2 = Uh.pa_apply params x in
  check_int "length m" 300 (Bs.length y1);
  check "agree" true (Bs.equal y1 y2)

let test_pa_different_inputs_differ () =
  let rng = Rng.create 52L in
  let params = Uh.pa_choose rng ~input_len:256 ~m:128 in
  let x1 = Rng.bits rng 256 in
  let x2 = Rng.bits rng 256 in
  check "outputs differ" false (Bs.equal (Uh.pa_apply params x1) (Uh.pa_apply params x2))

let test_pa_linear_structure () =
  (* h(x1) xor h(x2) = multiplier*(x1 xor x2) truncated (the addend
     cancels) — the linearity privacy amplification relies on. *)
  let rng = Rng.create 53L in
  let params = Uh.pa_choose rng ~input_len:128 ~m:64 in
  let x1 = Rng.bits rng 128 and x2 = Rng.bits rng 128 in
  let lhs = Bs.xor (Uh.pa_apply params x1) (Uh.pa_apply params x2) in
  let params_no_addend = { params with Uh.addend = Bs.create 64 } in
  let rhs = Uh.pa_apply params_no_addend (Bs.xor x1 x2) in
  check "linear" true (Bs.equal lhs rhs)

let test_pa_bad_m () =
  let rng = Rng.create 54L in
  Alcotest.check_raises "m too big"
    (Invalid_argument "Universal_hash.pa_choose: bad output size") (fun () ->
      ignore (Uh.pa_choose rng ~input_len:64 ~m:100))

let test_wc_tag_verify () =
  let rng = Rng.create 55L in
  let key = Rng.bits rng Uh.key_bits_per_tag in
  let msg = Bytes.of_string "authenticate this sift message" in
  let tag = Uh.wc_tag ~key msg in
  check "verify ok" true (Uh.wc_verify ~key ~tag msg);
  check "reject altered" false
    (Uh.wc_verify ~key ~tag (Bytes.of_string "authenticate this sift messagE"))

let test_wc_key_sensitivity () =
  let rng = Rng.create 56L in
  let key1 = Rng.bits rng Uh.key_bits_per_tag in
  let key2 = Rng.bits rng Uh.key_bits_per_tag in
  let msg = Bytes.of_string "message" in
  check "different keys, different tags" false
    (Bs.equal (Uh.wc_tag ~key:key1 msg) (Uh.wc_tag ~key:key2 msg))

let test_wc_length_extension_guard () =
  (* trailing zero bytes must change the tag (length is hashed in) *)
  let rng = Rng.create 57L in
  let key = Rng.bits rng Uh.key_bits_per_tag in
  let m1 = Bytes.of_string "abc" in
  let m2 = Bytes.of_string "abc\000" in
  check "padded differs" false (Bs.equal (Uh.wc_tag ~key m1) (Uh.wc_tag ~key m2))

let test_wc_bad_key_size () =
  Alcotest.check_raises "short key"
    (Invalid_argument "Universal_hash.wc_tag: key must be key_bits_per_tag bits")
    (fun () -> ignore (Uh.wc_tag ~key:(Bs.create 10) (Bytes.of_string "x")))

let prop_wc_forgery_resistance =
  QCheck.Test.make ~name:"wc tags differ across messages" ~count:100
    QCheck.(pair string string)
    (fun (s1, s2) ->
      QCheck.assume (s1 <> s2);
      let key = Rng.bits (Rng.create 58L) Uh.key_bits_per_tag in
      not (Bs.equal (Uh.wc_tag ~key (Bytes.of_string s1)) (Uh.wc_tag ~key (Bytes.of_string s2))))

(* -- Bignum / DH -- *)

let test_bignum_arith_matches_int () =
  let rng = Rng.create 61L in
  for _ = 1 to 200 do
    let a = Rng.int rng 1_000_000 and b = Rng.int rng 1_000_000 in
    let ba = Bignum.of_int a and bb = Bignum.of_int b in
    check "add" true (Bignum.to_int_opt (Bignum.add ba bb) = Some (a + b));
    check "mul" true (Bignum.to_int_opt (Bignum.mul ba bb) = Some (a * b));
    if b > 0 then begin
      let q, r = Bignum.divmod ba bb in
      check "divmod" true
        (Bignum.to_int_opt q = Some (a / b) && Bignum.to_int_opt r = Some (a mod b))
    end
  done

let test_bignum_sub_negative () =
  Alcotest.check_raises "negative" (Invalid_argument "Bignum.sub: negative result")
    (fun () -> ignore (Bignum.sub Bignum.one Bignum.two))

let test_bignum_bytes_roundtrip () =
  let rng = Rng.create 62L in
  for _ = 1 to 50 do
    let b = Qkd_util.Rng.bytes rng 37 in
    let n = Bignum.of_bytes_be b in
    let b' = Bignum.to_bytes_be ~len:37 n in
    check "roundtrip" true (Bytes.equal b b')
  done

let test_bignum_hex () =
  check "hex" true (Bignum.to_int_opt (Bignum.of_hex "ff 00") = Some 0xFF00)

let test_bignum_modpow_small () =
  let m =
    Bignum.mod_pow ~base:(Bignum.of_int 5) ~exponent:(Bignum.of_int 117)
      ~modulus:(Bignum.of_int 19)
  in
  check "5^117 mod 19" true (Bignum.to_int_opt m = Some 1)

let test_bignum_modpow_fermat () =
  (* a^(p-1) = 1 mod p for prime p = 1_000_003 *)
  let p = Bignum.of_int 1_000_003 in
  let m =
    Bignum.mod_pow ~base:(Bignum.of_int 2) ~exponent:(Bignum.of_int 1_000_002) ~modulus:p
  in
  check "fermat" true (Bignum.to_int_opt m = Some 1)

(* Miller-Rabin over our own bignum, used to verify the transcribed
   Oakley primes really are prime. *)
let miller_rabin n rounds rng =
  let two = Bignum.two in
  let n_minus_1 = Bignum.sub n Bignum.one in
  (* n-1 = 2^s * d *)
  let rec split d s =
    let q, r = Bignum.divmod d two in
    if Bignum.is_zero r then split q (s + 1) else (d, s)
  in
  let d, s = split n_minus_1 0 in
  let witness a =
    let x = ref (Bignum.mod_pow ~base:a ~exponent:d ~modulus:n) in
    if Bignum.equal !x Bignum.one || Bignum.equal !x n_minus_1 then false
    else begin
      let composite = ref true in
      for _ = 1 to s - 1 do
        if !composite then begin
          x := Bignum.mod_pow ~base:!x ~exponent:two ~modulus:n;
          if Bignum.equal !x n_minus_1 then composite := false
        end
      done;
      !composite
    end
  in
  let rec go i =
    if i = rounds then true
    else begin
      let a = Bignum.add two (Bignum.rem (Bignum.random rng ~bits:64) (Bignum.sub n (Bignum.of_int 4))) in
      if witness a then false else go (i + 1)
    end
  in
  go 0

let test_oakley1_prime () =
  let rng = Rng.create 63L in
  check "768-bit prime" true (miller_rabin (Dh.prime Dh.Oakley1) 2 rng)

let test_dh_agreement () =
  let rng = Rng.create 64L in
  let ka = Dh.generate rng Dh.Oakley1 in
  let kb = Dh.generate rng Dh.Oakley1 in
  let sa = Dh.shared_secret Dh.Oakley1 ~secret:ka.Dh.secret ~peer_public:kb.Dh.public in
  let sb = Dh.shared_secret Dh.Oakley1 ~secret:kb.Dh.secret ~peer_public:ka.Dh.public in
  check "agree" true (Bytes.equal sa sb);
  check_int "96 bytes" 96 (Bytes.length sa)

let test_dh_distinct_sessions () =
  let rng = Rng.create 65L in
  let k1 = Dh.generate rng Dh.Oakley1 in
  let k2 = Dh.generate rng Dh.Oakley1 in
  check "fresh secrets" false (Bignum.equal k1.Dh.secret k2.Dh.secret)

(* -- Prf -- *)

let test_prf_expand_length () =
  let key = Bytes.of_string "k" and seed = Bytes.of_string "s" in
  check_int "17" 17 (Bytes.length (Prf.expand ~key ~seed ~len:17));
  check_int "100" 100 (Bytes.length (Prf.expand ~key ~seed ~len:100))

let test_prf_expand_deterministic_prefix () =
  let key = Bytes.of_string "key" and seed = Bytes.of_string "seed" in
  let a = Prf.expand ~key ~seed ~len:40 in
  let b = Prf.expand ~key ~seed ~len:60 in
  check "prefix stable" true (Bytes.equal a (Bytes.sub b 0 40))

let test_keymat_qbits_matter () =
  let skeyid_d = Bytes.make 20 'd' in
  let nonces = Bytes.of_string "NiNr" in
  let k1 =
    Prf.keymat ~skeyid_d ~qbits:(Bytes.of_string "quantum!") ~protocol:50 ~spi:7l
      ~nonces ~len:36
  in
  let k2 =
    Prf.keymat ~skeyid_d ~qbits:(Bytes.of_string "QUANTUM!") ~protocol:50 ~spi:7l
      ~nonces ~len:36
  in
  let k3 = Prf.keymat ~skeyid_d ~qbits:Bytes.empty ~protocol:50 ~spi:7l ~nonces ~len:36 in
  check "qbits change keymat" false (Bytes.equal k1 k2);
  check "empty differs too" false (Bytes.equal k1 k3)

let test_keymat_spi_matters () =
  let skeyid_d = Bytes.make 20 'd' in
  let nonces = Bytes.of_string "NiNr" in
  let q = Bytes.of_string "q" in
  let k1 = Prf.keymat ~skeyid_d ~qbits:q ~protocol:50 ~spi:7l ~nonces ~len:36 in
  let k2 = Prf.keymat ~skeyid_d ~qbits:q ~protocol:50 ~spi:8l ~nonces ~len:36 in
  check "per-SPI keys" false (Bytes.equal k1 k2)

(* -- cross-cutting property tests -- *)

let bytes_gen = QCheck.map Bytes.of_string QCheck.string

let prop_aes_cbc_roundtrip =
  QCheck.Test.make ~name:"aes cbc roundtrip any plaintext" ~count:100 bytes_gen
    (fun pt ->
      let key = Aes.expand_key (Bytes.make 16 'k') in
      let iv = Bytes.make 16 'v' in
      Bytes.equal pt (Aes.decrypt_cbc key ~iv (Aes.encrypt_cbc key ~iv pt)))

let prop_aes_ctr_involution =
  QCheck.Test.make ~name:"aes ctr involution" ~count:100 bytes_gen (fun pt ->
      let key = Aes.expand_key (Bytes.make 32 'K') in
      let nonce = Bytes.make 16 'n' in
      Bytes.equal pt (Aes.ctr key ~nonce (Aes.ctr key ~nonce pt)))

let prop_3des_cbc_roundtrip =
  QCheck.Test.make ~name:"3des cbc roundtrip" ~count:50 bytes_gen (fun pt ->
      let key = Des.ede3_key (Bytes.make 24 'd') in
      let iv = Bytes.make 8 'v' in
      Bytes.equal pt (Des.decrypt_cbc key ~iv (Des.encrypt_cbc key ~iv pt)))

let prop_sha1_incremental_equals_oneshot =
  QCheck.Test.make ~name:"sha1 incremental = one-shot" ~count:100
    QCheck.(pair string small_nat)
    (fun (s, k) ->
      let b = Bytes.of_string s in
      let k = if Bytes.length b = 0 then 0 else k mod (Bytes.length b + 1) in
      let ctx = Sha1.init () in
      Sha1.feed ctx b ~pos:0 ~len:k;
      Sha1.feed ctx b ~pos:k ~len:(Bytes.length b - k);
      Bytes.equal (Sha1.finalize ctx) (Sha1.digest b))

let prop_hmac_keys_separate =
  QCheck.Test.make ~name:"hmac distinct keys distinct tags" ~count:50
    QCheck.(pair string string)
    (fun (k1, k2) ->
      QCheck.assume (k1 <> k2);
      let msg = Bytes.of_string "fixed message" in
      not
        (Bytes.equal
           (Hmac.mac ~hash:Hmac.SHA1 ~key:(Bytes.of_string k1) msg)
           (Hmac.mac ~hash:Hmac.SHA1 ~key:(Bytes.of_string k2) msg)))

let prop_bignum_mul_commutative =
  QCheck.Test.make ~name:"bignum mul commutative" ~count:100
    QCheck.(pair (list (int_bound 255)) (list (int_bound 255)))
    (fun (xs, ys) ->
      let of_list l = Bignum.of_bytes_be (Bytes.of_string (String.init (List.length l) (fun i -> Char.chr (List.nth l i)))) in
      let a = of_list xs and b = of_list ys in
      Bignum.equal (Bignum.mul a b) (Bignum.mul b a))

let prop_bignum_divmod_identity =
  QCheck.Test.make ~name:"bignum a = q*b + r" ~count:100
    QCheck.(pair (int_bound 1_000_000_000) (int_range 1 1_000_000))
    (fun (a, b) ->
      let ba = Bignum.of_int a and bb = Bignum.of_int b in
      let q, r = Bignum.divmod ba bb in
      Bignum.equal ba (Bignum.add (Bignum.mul q bb) r)
      && Bignum.compare r bb < 0)

let prop_gf2_mul_degree =
  QCheck.Test.make ~name:"gf2 deg(a*b) = deg a + deg b" ~count:100
    QCheck.(pair (list bool) (list bool))
    (fun (xs, ys) ->
      let a = Gf2.Poly.of_bitstring (Bs.of_bool_list xs) in
      let b = Gf2.Poly.of_bitstring (Bs.of_bool_list ys) in
      QCheck.assume (not (Gf2.Poly.is_zero a) && not (Gf2.Poly.is_zero b));
      Gf2.Poly.degree (Gf2.Poly.mul a b) = Gf2.Poly.degree a + Gf2.Poly.degree b)

(* -- dataplane kernels vs their allocating wrappers -- *)

let prop_otp_refill_preserves_order =
  (* the pad is a two-list queue: interleaving refills with takes must
     still hand out bits in exactly the order they were offered *)
  QCheck.Test.make ~name:"otp refill preserves pad order" ~count:100
    QCheck.(
      list_of_size
        Gen.(int_range 1 10)
        (pair (int_range 1 32) (int_range 0 16)))
    (fun steps ->
      let rng = Rng.create 4242L in
      let chunks = List.map (fun (c, _) -> Rng.bits rng (8 * c)) steps in
      let reference = Otp.pad_of_bits (Bs.concat_list (List.map Bs.copy chunks)) in
      let incremental = Otp.pad_of_bits (Bs.create 0) in
      List.for_all2
        (fun (_, take) chunk ->
          Otp.refill incremental chunk;
          (* encrypting zeros exposes the raw pad bytes *)
          take = 0
          || Otp.remaining incremental < 8 * take
          ||
          let src = Bytes.make (take + 2) '\000' in
          let dst = Bytes.make (take + 3) '\xAA' in
          Otp.encrypt_into incremental ~src ~src_pos:1 ~len:take ~dst ~dst_pos:3;
          Bytes.equal (Bytes.sub dst 3 take)
            (Otp.encrypt reference (Bytes.make take '\000')))
        steps chunks)

let prop_hmac_sha1_96_into_matches_mac96 =
  QCheck.Test.make ~name:"hmac sha1-96 kernels = mac_96" ~count:100
    QCheck.(pair (string_of_size Gen.(int_range 0 100)) string)
    (fun (key, msg) ->
      let key = Bytes.of_string key and msg = Bytes.of_string msg in
      let k = Hmac.sha1_key key in
      let len = Bytes.length msg in
      let expect = Hmac.mac_96 ~hash:Hmac.SHA1 ~key msg in
      let dst = Bytes.make 16 '\xAA' in
      Hmac.sha1_96_into k ~msg ~pos:0 ~len ~dst ~dst_pos:2;
      let matches = Bytes.equal expect (Bytes.sub dst 2 12) in
      (* the key's context is reusable across packets *)
      let again = Bytes.make 12 '\000' in
      Hmac.sha1_96_into k ~msg ~pos:0 ~len ~dst:again ~dst_pos:0;
      let reuse_ok = Bytes.equal expect again in
      let verify_ok = Hmac.sha1_96_verify k ~msg ~pos:0 ~len ~tag:dst ~tag_pos:2 in
      Bytes.set dst 5 (Char.chr (Char.code (Bytes.get dst 5) lxor 0x10));
      let tampered_rejected =
        not (Hmac.sha1_96_verify k ~msg ~pos:0 ~len ~tag:dst ~tag_pos:2)
      in
      matches && reuse_ok && verify_ok && tampered_rejected)

let prop_aes_cbc_into_matches_wrapper =
  QCheck.Test.make ~name:"aes cbc into-kernels = wrappers" ~count:100
    QCheck.(pair bytes_gen (int_bound 24))
    (fun (pt, off) ->
      let key = Aes.expand_key (Bytes.make 16 'k') in
      let scratch = Array.make 16 0 in
      let iv = Bytes.init 16 (fun i -> Char.chr (i * 7 land 0xFF)) in
      let len = Bytes.length pt in
      let src = Bytes.make (off + len) '\000' in
      Bytes.blit pt 0 src off len;
      let dst = Bytes.make (off + len + 16) '\000' in
      let n =
        Aes.encrypt_cbc_into key ~scratch ~src ~src_pos:off ~len ~iv ~iv_pos:0
          ~dst ~dst_pos:off
      in
      let expect = Aes.encrypt_cbc key ~iv pt in
      let back = Bytes.make (off + n) '\000' in
      let m =
        Aes.decrypt_cbc_into key ~scratch ~src:dst ~src_pos:off ~len:n ~iv
          ~iv_pos:0 ~dst:back ~dst_pos:off
      in
      n = Bytes.length expect
      && Bytes.equal expect (Bytes.sub dst off n)
      && m = len
      && Bytes.equal pt (Bytes.sub back off m)
      (* a truncated ciphertext reports -1 instead of raising *)
      && Aes.decrypt_cbc_into key ~scratch ~src:dst ~src_pos:off ~len:(n - 1)
           ~iv ~iv_pos:0 ~dst:back ~dst_pos:off
         = -1)

let prop_des_cbc_into_matches_wrapper =
  QCheck.Test.make ~name:"3des cbc into-kernels = wrappers" ~count:50
    QCheck.(pair bytes_gen (int_bound 16))
    (fun (pt, off) ->
      let key = Des.ede3_key (Bytes.make 24 'd') in
      let iv = Bytes.init 8 (fun i -> Char.chr (i * 31 land 0xFF)) in
      let len = Bytes.length pt in
      let src = Bytes.make (off + len) '\000' in
      Bytes.blit pt 0 src off len;
      let dst = Bytes.make (off + len + 8) '\000' in
      let n =
        Des.encrypt_cbc_into key ~src ~src_pos:off ~len ~iv ~iv_pos:0 ~dst
          ~dst_pos:off
      in
      let expect = Des.encrypt_cbc key ~iv pt in
      let back = Bytes.make (off + n) '\000' in
      let m =
        Des.decrypt_cbc_into key ~src:dst ~src_pos:off ~len:n ~iv ~iv_pos:0
          ~dst:back ~dst_pos:off
      in
      n = Bytes.length expect
      && Bytes.equal expect (Bytes.sub dst off n)
      && m = len
      && Bytes.equal pt (Bytes.sub back off m)
      && Des.decrypt_cbc_into key ~src:dst ~src_pos:off ~len:(n - 1) ~iv
           ~iv_pos:0 ~dst:back ~dst_pos:off
         = -1)

let prop_sha1_reset_reuse_matches_digest =
  QCheck.Test.make ~name:"sha1 reset/finalize_into = digest" ~count:100
    QCheck.(pair string string)
    (fun (s1, s2) ->
      let b1 = Bytes.of_string s1 and b2 = Bytes.of_string s2 in
      let ctx = Sha1.init () in
      let out = Bytes.make 24 '\xFF' in
      Sha1.feed ctx b1 ~pos:0 ~len:(Bytes.length b1);
      Sha1.finalize_into ctx ~dst:out ~pos:4;
      let first = Bytes.equal (Sha1.digest b1) (Bytes.sub out 4 20) in
      Sha1.reset ctx;
      Sha1.feed ctx b2 ~pos:0 ~len:(Bytes.length b2);
      first && Bytes.equal (Sha1.finalize ctx) (Sha1.digest b2))

let () =
  Alcotest.run "qkd_crypto"
    [
      ( "gf2",
        [
          Alcotest.test_case "of_terms degree" `Quick test_poly_of_terms_degree;
          Alcotest.test_case "add cancels" `Quick test_poly_add_self_cancels;
          Alcotest.test_case "mul known" `Quick test_poly_mul_known;
          Alcotest.test_case "mul zero/one" `Quick test_poly_mul_zero_one;
          Alcotest.test_case "square = mul" `Quick test_poly_square_matches_mul;
          Alcotest.test_case "rem" `Quick test_poly_rem;
          Alcotest.test_case "rem by zero" `Quick test_poly_rem_by_zero;
          Alcotest.test_case "gcd" `Quick test_poly_gcd;
          Alcotest.test_case "irreducible small" `Quick test_irreducible_small;
          Alcotest.test_case "table irreducible" `Slow test_known_moduli_irreducible;
          Alcotest.test_case "find modulus" `Quick test_find_modulus;
          Alcotest.test_case "field laws" `Quick test_field_mul_commutative_associative;
          Alcotest.test_case "element roundtrip" `Quick test_field_element_roundtrip;
          Alcotest.test_case "too many bits" `Quick test_field_too_many_bits;
        ] );
      ( "hashes",
        [
          Alcotest.test_case "sha1 vectors" `Quick test_sha1_vectors;
          Alcotest.test_case "sha1 incremental" `Quick test_sha1_incremental;
          Alcotest.test_case "sha1 million a" `Slow test_sha1_million_a;
          Alcotest.test_case "sha1 finalize twice" `Quick test_sha1_finalize_twice;
          Alcotest.test_case "sha256 vectors" `Quick test_sha256_vectors;
          Alcotest.test_case "hmac-sha1 rfc2202" `Quick test_hmac_sha1_rfc2202;
          Alcotest.test_case "hmac-sha256 rfc4231" `Quick test_hmac_sha256_rfc4231;
          Alcotest.test_case "hmac verify" `Quick test_hmac_verify;
        ] );
      ( "aes",
        [
          Alcotest.test_case "fips-197" `Quick test_aes_fips197;
          Alcotest.test_case "cbc roundtrip" `Quick test_aes_cbc_roundtrip;
          Alcotest.test_case "cbc sp800-38a" `Quick test_aes_cbc_sp800_38a;
          Alcotest.test_case "ctr involution" `Quick test_aes_ctr_involution;
          Alcotest.test_case "ctr sp800-38a" `Quick test_aes_ctr_sp800_38a;
          Alcotest.test_case "bad key" `Quick test_aes_bad_key;
          Alcotest.test_case "bad padding" `Quick test_aes_bad_padding;
        ] );
      ( "des",
        [
          Alcotest.test_case "classic vector" `Quick test_des_classic_vector;
          Alcotest.test_case "weak key" `Quick test_des_weak_key_property;
          Alcotest.test_case "3des degenerates" `Quick test_3des_degenerates_to_des;
          Alcotest.test_case "3des cbc" `Quick test_3des_cbc_roundtrip;
          Alcotest.test_case "complement property" `Quick test_des_complement_property;
        ] );
      ( "otp",
        [
          Alcotest.test_case "roundtrip" `Quick test_otp_roundtrip;
          Alcotest.test_case "exhaustion atomic" `Quick test_otp_exhaustion_atomic;
          Alcotest.test_case "refill" `Quick test_otp_refill;
        ] );
      ( "universal-hash",
        [
          Alcotest.test_case "round up" `Quick test_pa_round_up;
          Alcotest.test_case "pa agreement" `Quick test_pa_agreement;
          Alcotest.test_case "pa inputs differ" `Quick test_pa_different_inputs_differ;
          Alcotest.test_case "pa linearity" `Quick test_pa_linear_structure;
          Alcotest.test_case "pa bad m" `Quick test_pa_bad_m;
          Alcotest.test_case "wc tag/verify" `Quick test_wc_tag_verify;
          Alcotest.test_case "wc key sensitivity" `Quick test_wc_key_sensitivity;
          Alcotest.test_case "wc length guard" `Quick test_wc_length_extension_guard;
          Alcotest.test_case "wc bad key size" `Quick test_wc_bad_key_size;
          qcheck prop_wc_forgery_resistance;
        ] );
      ( "bignum-dh",
        [
          Alcotest.test_case "arith vs int" `Quick test_bignum_arith_matches_int;
          Alcotest.test_case "sub negative" `Quick test_bignum_sub_negative;
          Alcotest.test_case "bytes roundtrip" `Quick test_bignum_bytes_roundtrip;
          Alcotest.test_case "hex" `Quick test_bignum_hex;
          Alcotest.test_case "modpow small" `Quick test_bignum_modpow_small;
          Alcotest.test_case "modpow fermat" `Quick test_bignum_modpow_fermat;
          Alcotest.test_case "oakley1 prime" `Slow test_oakley1_prime;
          Alcotest.test_case "dh agreement" `Quick test_dh_agreement;
          Alcotest.test_case "dh fresh secrets" `Quick test_dh_distinct_sessions;
        ] );
      ( "properties",
        [
          qcheck prop_aes_cbc_roundtrip;
          qcheck prop_aes_ctr_involution;
          qcheck prop_3des_cbc_roundtrip;
          qcheck prop_sha1_incremental_equals_oneshot;
          qcheck prop_hmac_keys_separate;
          qcheck prop_bignum_mul_commutative;
          qcheck prop_bignum_divmod_identity;
          qcheck prop_gf2_mul_degree;
          qcheck prop_otp_refill_preserves_order;
          qcheck prop_hmac_sha1_96_into_matches_mac96;
          qcheck prop_aes_cbc_into_matches_wrapper;
          qcheck prop_des_cbc_into_matches_wrapper;
          qcheck prop_sha1_reset_reuse_matches_digest;
        ] );
      ( "prf",
        [
          Alcotest.test_case "expand length" `Quick test_prf_expand_length;
          Alcotest.test_case "expand prefix" `Quick test_prf_expand_deterministic_prefix;
          Alcotest.test_case "keymat qbits" `Quick test_keymat_qbits_matter;
          Alcotest.test_case "keymat spi" `Quick test_keymat_spi_matters;
        ] );
    ]
