(* Tests for qkd_util: bitstrings, RNG, LFSR, RLE, stats, CRC, hex. *)

module Bs = Qkd_util.Bitstring
module Rng = Qkd_util.Rng
module Lfsr = Qkd_util.Lfsr
module Rle = Qkd_util.Rle
module Stats = Qkd_util.Stats

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let qcheck = QCheck_alcotest.to_alcotest

(* -- Bitstring -- *)

let test_create_zeroed () =
  let b = Bs.create 67 in
  check_int "length" 67 (Bs.length b);
  check_int "popcount" 0 (Bs.popcount b)

let test_set_get () =
  let b = Bs.create 10 in
  Bs.set b 3 true;
  Bs.set b 9 true;
  check "bit 3" true (Bs.get b 3);
  check "bit 4" false (Bs.get b 4);
  check "bit 9" true (Bs.get b 9);
  Bs.set b 3 false;
  check "cleared" false (Bs.get b 3)

let test_bounds () =
  let b = Bs.create 8 in
  Alcotest.check_raises "get -1" (Invalid_argument "Bitstring: index out of range")
    (fun () -> ignore (Bs.get b (-1)));
  Alcotest.check_raises "get 8" (Invalid_argument "Bitstring: index out of range")
    (fun () -> ignore (Bs.get b 8))

let test_of_to_string () =
  let s = "1011001" in
  check_str "roundtrip" s (Bs.to_string (Bs.of_string s));
  check_int "popcount" 4 (Bs.popcount (Bs.of_string s))

let test_of_string_invalid () =
  Alcotest.check_raises "bad char"
    (Invalid_argument "Bitstring.of_string: expected '0' or '1'") (fun () ->
      ignore (Bs.of_string "10x"))

let test_flip () =
  let b = Bs.of_string "0000" in
  Bs.flip b 2;
  check_str "flip once" "0010" (Bs.to_string b);
  Bs.flip b 2;
  check_str "flip twice" "0000" (Bs.to_string b)

let test_xor () =
  let a = Bs.of_string "1100" and b = Bs.of_string "1010" in
  check_str "xor" "0110" (Bs.to_string (Bs.xor a b));
  check_str "a unchanged" "1100" (Bs.to_string a)

let test_xor_length_mismatch () =
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Bitstring.xor_into: length mismatch") (fun () ->
      ignore (Bs.xor (Bs.create 4) (Bs.create 5)))

let test_parity () =
  check "even" false (Bs.parity (Bs.of_string "1100"));
  check "odd" true (Bs.parity (Bs.of_string "1110"));
  check "empty" false (Bs.parity (Bs.create 0))

let test_parity_masked () =
  let bits = Bs.of_string "10110" in
  let mask = Bs.of_string "11010" in
  (* selected bits: positions 0,1,3 -> 1,0,1 -> even *)
  check "masked parity" false (Bs.parity_masked bits mask);
  let mask2 = Bs.of_string "10000" in
  check "single" true (Bs.parity_masked bits mask2)

let test_sub_concat () =
  let b = Bs.of_string "110101" in
  check_str "sub" "010" (Bs.to_string (Bs.sub b 2 3));
  check_str "concat" "110101110" (Bs.to_string (Bs.concat b (Bs.of_string "110")));
  check_str "concat_list" "1101"
    (Bs.to_string (Bs.concat_list [ Bs.of_string "11"; Bs.of_string "01" ]))

let test_sub_bounds () =
  Alcotest.check_raises "sub" (Invalid_argument "Bitstring.sub") (fun () ->
      ignore (Bs.sub (Bs.create 4) 2 3))

let test_hamming () =
  check_int "distance" 2
    (Bs.hamming_distance (Bs.of_string "1100") (Bs.of_string "1010"))

let test_extract () =
  let b = Bs.of_string "10110" in
  check_str "extract" "101" (Bs.to_string (Bs.extract b [| 0; 1; 2 |]));
  check_str "extract scattered" "10" (Bs.to_string (Bs.extract b [| 0; 4 |]))

let test_bytes_roundtrip () =
  let b = Bs.of_string "101100111" in
  let packed = Bs.to_bytes b in
  check "roundtrip" true (Bs.equal b (Bs.of_bytes packed 9))

let test_of_bytes_clears_tail () =
  (* high bits of the last byte must not leak into equality *)
  let raw = Bytes.make 1 '\xFF' in
  let b = Bs.of_bytes raw 3 in
  check_int "popcount" 3 (Bs.popcount b);
  let c = Bs.of_string "111" in
  check "equal" true (Bs.equal b c)

let test_append_bit () =
  let b = Bs.of_string "10" in
  check_str "append" "101" (Bs.to_string (Bs.append_bit b true))

let test_equal_diff_len () =
  check "diff length" false (Bs.equal (Bs.create 3) (Bs.create 4))

let test_foldi_iteri () =
  let b = Bs.of_string "1011" in
  let ones = Bs.foldi (fun acc _ bit -> if bit then acc + 1 else acc) 0 b in
  check_int "foldi" 3 ones;
  let count = ref 0 in
  Bs.iteri (fun _ _ -> incr count) b;
  check_int "iteri visits all" 4 !count

let prop_xor_involution =
  QCheck.Test.make ~name:"bitstring xor involution" ~count:200
    QCheck.(pair (list bool) (list bool))
    (fun (xs, ys) ->
      let n = min (List.length xs) (List.length ys) in
      let take l = List.filteri (fun i _ -> i < n) l in
      let a = Bs.of_bool_list (take xs) and b = Bs.of_bool_list (take ys) in
      Bs.equal a (Bs.xor (Bs.xor a b) b))

let prop_popcount_matches_list =
  QCheck.Test.make ~name:"popcount = list count" ~count:200
    QCheck.(list bool)
    (fun xs ->
      Bs.popcount (Bs.of_bool_list xs) = List.length (List.filter Fun.id xs))

let prop_sub_concat_id =
  QCheck.Test.make ~name:"concat of split = original" ~count:200
    QCheck.(pair (list bool) small_nat)
    (fun (xs, k) ->
      let b = Bs.of_bool_list xs in
      let n = Bs.length b in
      let k = if n = 0 then 0 else k mod (n + 1) in
      Bs.equal b (Bs.concat (Bs.sub b 0 k) (Bs.sub b k (n - k))))

let prop_bytes_roundtrip =
  QCheck.Test.make ~name:"bytes roundtrip" ~count:200
    QCheck.(list bool)
    (fun xs ->
      let b = Bs.of_bool_list xs in
      Bs.equal b (Bs.of_bytes (Bs.to_bytes b) (Bs.length b)))

(* -- Bitstring bulk primitives: the word-fill and range-copy paths
   must agree with the definitional bit-at-a-time versions on every
   alignment, since the fast paths switch strategy at byte
   boundaries. -- *)

let naive_blit_int64 b ~pos ~bits w =
  for k = 0 to bits - 1 do
    Bs.set b (pos + k) (Int64.logand (Int64.shift_right_logical w k) 1L = 1L)
  done

let test_blit_int64_aligned () =
  let a = Bs.create 128 and b = Bs.create 128 in
  let w = 0xDEADBEEFCAFEF00DL in
  Bs.blit_int64 a ~pos:64 ~bits:64 w;
  naive_blit_int64 b ~pos:64 ~bits:64 w;
  check "aligned full word" true (Bs.equal a b);
  let a = Bs.create 30 and b = Bs.create 30 in
  Bs.blit_int64 a ~pos:8 ~bits:13 w;
  naive_blit_int64 b ~pos:8 ~bits:13 w;
  check "aligned partial word" true (Bs.equal a b)

let test_blit_int64_preserves_neighbours () =
  (* bits outside [pos, pos+bits) must survive the write *)
  let a = Bs.create 24 in
  for i = 0 to 23 do
    Bs.set a i true
  done;
  Bs.blit_int64 a ~pos:8 ~bits:5 0L;
  for i = 0 to 23 do
    let expect = i < 8 || i >= 13 in
    check (Printf.sprintf "bit %d" i) expect (Bs.get a i)
  done

let test_blit_int64_bounds () =
  Alcotest.check_raises "range"
    (Invalid_argument "Bitstring.blit_int64: range out of bounds") (fun () ->
      Bs.blit_int64 (Bs.create 10) ~pos:8 ~bits:3 0L);
  Alcotest.check_raises "bits > 64"
    (Invalid_argument "Bitstring.blit_int64: bits must be within [0, 64]")
    (fun () -> Bs.blit_int64 (Bs.create 100) ~pos:0 ~bits:65 0L)

let prop_blit_int64_matches_naive =
  QCheck.Test.make ~name:"blit_int64 = per-bit fill" ~count:500
    QCheck.(triple (int_bound 150) (int_bound 64) int64)
    (fun (pos, bits, w) ->
      let a = Bs.create 256 and b = Bs.create 256 in
      Bs.blit_int64 a ~pos ~bits w;
      naive_blit_int64 b ~pos ~bits w;
      Bs.equal a b)

let prop_blit_matches_naive =
  QCheck.Test.make ~name:"blit = per-bit copy" ~count:500
    QCheck.(quad (int_bound 100) (int_bound 100) (int_bound 100) int64)
    (fun (src_pos, dst_pos, len, seed) ->
      let src = Rng.bits (Rng.create seed) 256 in
      let a = Rng.bits (Rng.create (Int64.lognot seed)) 256 in
      let b = Bs.copy a in
      Bs.blit ~src ~src_pos a ~dst_pos ~len;
      for k = 0 to len - 1 do
        Bs.set b (dst_pos + k) (Bs.get src (src_pos + k))
      done;
      Bs.equal a b)

let test_blit_bounds () =
  Alcotest.check_raises "range"
    (Invalid_argument "Bitstring.blit: range out of bounds") (fun () ->
      Bs.blit ~src:(Bs.create 8) ~src_pos:0 (Bs.create 8) ~dst_pos:4 ~len:8)

(* -- Rng -- *)

let test_rng_deterministic () =
  let a = Rng.create 99L and b = Rng.create 99L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_rng_split_independent () =
  let r = Rng.create 7L in
  let a = Rng.split r in
  let b = Rng.split r in
  check "split streams differ" false (Rng.int64 a = Rng.int64 b)

let test_rng_float_range () =
  let r = Rng.create 3L in
  for _ = 1 to 1000 do
    let x = Rng.float r in
    check "in [0,1)" true (x >= 0.0 && x < 1.0)
  done

let test_rng_int_range () =
  let r = Rng.create 4L in
  for _ = 1 to 1000 do
    let x = Rng.int r 17 in
    check "in range" true (x >= 0 && x < 17)
  done

let test_rng_int_invalid () =
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int (Rng.create 1L) 0))

let test_rng_bool_balanced () =
  let r = Rng.create 5L in
  let heads = ref 0 in
  for _ = 1 to 10_000 do
    if Rng.bool r then incr heads
  done;
  check "roughly fair" true (abs (!heads - 5000) < 300)

let test_rng_bernoulli_extremes () =
  let r = Rng.create 6L in
  check "p=0" false (Rng.bernoulli r 0.0);
  check "p=1" true (Rng.bernoulli r 1.0)

let test_rng_poisson_mean () =
  let r = Rng.create 8L in
  let mu = 0.1 in
  let n = 100_000 in
  let total = ref 0 in
  for _ = 1 to n do
    total := !total + Rng.poisson r mu
  done;
  let mean = float_of_int !total /. float_of_int n in
  check "poisson mean" true (abs_float (mean -. mu) < 0.01)

let test_rng_poisson_zero () =
  check_int "mu=0" 0 (Rng.poisson (Rng.create 1L) 0.0)

let test_rng_exponential_mean () =
  let r = Rng.create 9L in
  let n = 50_000 in
  let total = ref 0.0 in
  for _ = 1 to n do
    total := !total +. Rng.exponential r 2.0
  done;
  let mean = total.contents /. float_of_int n in
  check "exp mean 1/rate" true (abs_float (mean -. 0.5) < 0.02)

let test_rng_bits_length () =
  let r = Rng.create 10L in
  check_int "70 bits" 70 (Bs.length (Rng.bits r 70));
  check_int "0 bits" 0 (Bs.length (Rng.bits r 0))

let test_rng_bits_balanced () =
  let r = Rng.create 11L in
  let b = Rng.bits r 10_000 in
  let ones = Bs.popcount b in
  check "balanced" true (abs (ones - 5000) < 300)

let test_rng_shuffle_permutes () =
  let r = Rng.create 12L in
  let arr = Array.init 100 Fun.id in
  Rng.shuffle r arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  check "is permutation" true (sorted = Array.init 100 Fun.id);
  check "actually moved" true (arr <> Array.init 100 Fun.id)

let test_rng_bytes_length () =
  check_int "13 bytes" 13 (Bytes.length (Rng.bytes (Rng.create 13L) 13))

(* The word-fill [Rng.bits] must reproduce the original per-bit fill
   exactly: one [int64] draw per 64 bits, LSB first.  Golden data and
   sifting results all depend on this stream staying put. *)
let legacy_bits seed n =
  let t = Rng.create seed in
  let b = Bs.create n in
  let i = ref 0 in
  while !i < n do
    let w = ref (Rng.int64 t) in
    let stop = min n (!i + 64) in
    while !i < stop do
      Bs.set b !i (Int64.logand !w 1L = 1L);
      w := Int64.shift_right_logical !w 1;
      incr i
    done
  done;
  b

let prop_rng_bits_matches_legacy =
  QCheck.Test.make ~name:"bits = legacy per-bit fill" ~count:200
    QCheck.(pair int64 (int_bound 400))
    (fun (seed, n) ->
      let fast = Rng.bits (Rng.create seed) n in
      Bs.equal fast (legacy_bits seed n))

let test_rng_bits_same_stream_position () =
  (* after [bits], both fills must leave the generator at the same
     point, so downstream draws agree too *)
  let a = Rng.create 21L and b = Rng.create 21L in
  ignore (Rng.bits a 129);
  ignore (legacy_bits 21L 129);
  (* legacy_bits consumed its own rng; replicate on [b] *)
  ignore (Rng.int64 b);
  ignore (Rng.int64 b);
  ignore (Rng.int64 b);
  Alcotest.(check int64) "next draw" (Rng.int64 b) (Rng.int64 a)

let test_rng_derive_order_independent () =
  (* derive is a pure function of (seed, index): deriving frame 5
     before frame 2 or after must give identical streams *)
  let a = Rng.derive 99L 5L in
  let _ = Rng.derive 99L 2L in
  let b = Rng.derive 99L 5L in
  Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)

let test_rng_derive_distinct () =
  let a = Rng.derive 99L 0L and b = Rng.derive 99L 1L in
  check "indexes differ" false (Rng.int64 a = Rng.int64 b);
  let c = Rng.derive 98L 0L and d = Rng.derive 99L 0L in
  check "seeds differ" false (Rng.int64 c = Rng.int64 d)

(* -- Lfsr -- *)

let test_lfsr_zero_seed_fixup () =
  let t = Lfsr.create 0l in
  Alcotest.(check int32) "seed fixup" 1l (Lfsr.seed t)

let test_lfsr_deterministic () =
  let a = Lfsr.create 12345l and b = Lfsr.create 12345l in
  for _ = 1 to 200 do
    check "same bits" (Lfsr.next_bit a) (Lfsr.next_bit b)
  done

let test_lfsr_subset_deterministic () =
  let s1 = Lfsr.subset 77l ~len:500 in
  let s2 = Lfsr.subset 77l ~len:500 in
  check "subsets equal" true (Bs.equal s1 s2)

let test_lfsr_subset_half_density () =
  let s = Lfsr.subset 424242l ~len:10_000 in
  let ones = Bs.popcount s in
  check "about half" true (abs (ones - 5000) < 400)

let test_lfsr_different_seeds_differ () =
  let s1 = Lfsr.subset 1l ~len:256 in
  let s2 = Lfsr.subset 2l ~len:256 in
  check "differ" false (Bs.equal s1 s2)

let test_lfsr_nonzero_period () =
  (* The register must not get stuck at zero. *)
  let t = Lfsr.create 1l in
  let all_zero = ref true in
  for _ = 1 to 64 do
    if Lfsr.next_bit t then all_zero := false
  done;
  check "produces ones" false !all_zero

(* -- Rle -- *)

let test_rle_roundtrip_simple () =
  let syms = [| 0; 0; 0; 1; 1; 0; 2 |] in
  Alcotest.(check (array int)) "roundtrip" syms (Rle.decode (Rle.encode syms))

let test_rle_empty () =
  Alcotest.(check (array int)) "empty" [||] (Rle.decode (Rle.encode [||]))

let test_rle_compresses_runs () =
  let sparse = Array.make 100_000 0 in
  sparse.(500) <- 1;
  sparse.(70_000) <- 2;
  let encoded = Rle.encode sparse in
  check "strong compression" true (Bytes.length encoded < 40)

let test_rle_encoded_size_consistent () =
  let syms = Array.init 1000 (fun i -> if i mod 97 = 0 then 1 else 0) in
  check_int "size matches" (Bytes.length (Rle.encode syms)) (Rle.encoded_size syms)

let test_rle_symbol_range () =
  Alcotest.check_raises "symbol 256" (Invalid_argument "Rle: symbol out of byte range")
    (fun () -> ignore (Rle.encode [| 256 |]))

let test_rle_bits_roundtrip () =
  let b = Bs.of_string "0001100000011111" in
  check "bits roundtrip" true (Bs.equal b (Rle.decode_bits (Rle.encode_bits b)))

let test_rle_malformed () =
  Alcotest.check_raises "truncated" (Invalid_argument "Rle: truncated run")
    (fun () ->
      let good = Rle.encode [| 1; 1; 0 |] in
      (* keep count + first run only: the second run's symbol is gone *)
      ignore (Rle.decode (Bytes.sub good 0 3)))

let prop_rle_roundtrip =
  QCheck.Test.make ~name:"rle roundtrip" ~count:300
    QCheck.(list (int_bound 3))
    (fun xs ->
      let syms = Array.of_list xs in
      Rle.decode (Rle.encode syms) = syms)

(* -- Stats -- *)

let test_stats_mean () =
  Alcotest.(check (float 1e-9)) "mean" 2.5 (Stats.mean [| 1.0; 2.0; 3.0; 4.0 |])

let test_stats_mean_empty () =
  Alcotest.(check (float 1e-9)) "empty" 0.0 (Stats.mean [||])

let test_stats_variance () =
  Alcotest.(check (float 1e-9)) "variance" (5.0 /. 3.0)
    (Stats.variance [| 1.0; 2.0; 3.0; 4.0 |]);
  Alcotest.(check (float 1e-9)) "one sample" 0.0 (Stats.variance [| 5.0 |])

let test_stats_percentile () =
  let xs = [| 10.0; 20.0; 30.0; 40.0 |] in
  Alcotest.(check (float 1e-9)) "p0" 10.0 (Stats.percentile xs 0.0);
  Alcotest.(check (float 1e-9)) "p100" 40.0 (Stats.percentile xs 100.0);
  Alcotest.(check (float 1e-9)) "p50" 25.0 (Stats.percentile xs 50.0)

let test_stats_binomial_ci () =
  let lo, hi = Stats.binomial_ci ~k:50 ~n:100 ~z:2.0 in
  check "contains p" true (lo < 0.5 && 0.5 < hi);
  let lo0, hi0 = Stats.binomial_ci ~k:0 ~n:0 ~z:2.0 in
  Alcotest.(check (float 1e-9)) "no data lo" 0.0 lo0;
  Alcotest.(check (float 1e-9)) "no data hi" 1.0 hi0

let test_stats_binomial_ci_boundaries () =
  (* The Wald interval degenerates to a point at k = 0 and k = n; the
     Wilson interval must stay informative there. *)
  let lo, hi = Stats.binomial_ci ~k:0 ~n:100 ~z:2.0 in
  Alcotest.(check (float 1e-9)) "k=0 lower" 0.0 lo;
  check "k=0 upper nonzero" true (hi > 0.0 && hi < 0.2);
  let lo, hi = Stats.binomial_ci ~k:100 ~n:100 ~z:2.0 in
  Alcotest.(check (float 1e-9)) "k=n upper" 1.0 hi;
  check "k=n lower below one" true (lo < 1.0 && lo > 0.8);
  (* symmetric cases mirror *)
  let lo1, hi1 = Stats.binomial_ci ~k:3 ~n:20 ~z:1.96 in
  let lo2, hi2 = Stats.binomial_ci ~k:17 ~n:20 ~z:1.96 in
  Alcotest.(check (float 1e-9)) "mirror lo" lo1 (1.0 -. hi2);
  Alcotest.(check (float 1e-9)) "mirror hi" hi1 (1.0 -. lo2)

let test_stats_binomial_ci_invalid () =
  Alcotest.check_raises "k > n" (Invalid_argument "Stats.binomial_ci: bad counts")
    (fun () -> ignore (Stats.binomial_ci ~k:5 ~n:4 ~z:2.0));
  Alcotest.check_raises "negative" (Invalid_argument "Stats.binomial_ci: bad counts")
    (fun () -> ignore (Stats.binomial_ci ~k:(-1) ~n:4 ~z:2.0))

let test_stats_percentile_invalid () =
  let xs = [| 1.0; 2.0 |] in
  Alcotest.check_raises "p < 0"
    (Invalid_argument "Stats.percentile: p outside [0, 100]") (fun () ->
      ignore (Stats.percentile xs (-0.5)));
  Alcotest.check_raises "p > 100"
    (Invalid_argument "Stats.percentile: p outside [0, 100]") (fun () ->
      ignore (Stats.percentile xs 100.5));
  Alcotest.check_raises "p NaN"
    (Invalid_argument "Stats.percentile: p outside [0, 100]") (fun () ->
      ignore (Stats.percentile xs Float.nan));
  Alcotest.check_raises "NaN sample"
    (Invalid_argument "Stats.percentile: NaN sample") (fun () ->
      ignore (Stats.percentile [| 1.0; Float.nan |] 50.0));
  Alcotest.check_raises "empty"
    (Invalid_argument "Stats.percentile: empty sample") (fun () ->
      ignore (Stats.percentile [||] 50.0))

let test_stats_percentile_extremes () =
  (* p = 0 and p = 100 are exactly min and max, on unsorted input *)
  let xs = [| 7.0; -3.0; 12.5; 0.25 |] in
  Alcotest.(check (float 1e-9)) "p0 = min" (-3.0) (Stats.percentile xs 0.0);
  Alcotest.(check (float 1e-9)) "p100 = max" 12.5 (Stats.percentile xs 100.0);
  Alcotest.(check (float 1e-9)) "single sample" 4.0
    (Stats.percentile [| 4.0 |] 73.0)

let test_stats_histogram () =
  let h = Stats.histogram ~bins:4 ~lo:0.0 ~hi:4.0 [| 0.5; 1.5; 1.6; 3.9; -1.0; 9.0 |] in
  check_int "bin 0 (with clamp)" 2 h.Stats.counts.(0);
  check_int "bin 1" 2 h.Stats.counts.(1);
  check_int "bin 3 (with clamp)" 2 h.Stats.counts.(3)

(* -- Crc32 / Hex -- *)

let test_crc32_known () =
  (* CRC-32("123456789") = 0xCBF43926 *)
  Alcotest.(check int32) "check value" 0xCBF43926l
    (Qkd_util.Crc32.digest (Bytes.of_string "123456789"))

let test_crc32_detects_flip () =
  let b = Bytes.of_string "hello quantum world" in
  let c1 = Qkd_util.Crc32.digest b in
  Bytes.set b 3 'X';
  check "changed" false (Qkd_util.Crc32.digest b = c1)

let test_hex_roundtrip () =
  let b = Bytes.of_string "\x00\xff\x10\x9a" in
  check_str "encode" "00ff109a" (Qkd_util.Hex.encode b);
  check "roundtrip" true (Bytes.equal b (Qkd_util.Hex.decode "00ff109a"));
  check "uppercase ok" true (Bytes.equal b (Qkd_util.Hex.decode "00FF109A"))

let test_hex_invalid () =
  Alcotest.check_raises "odd" (Invalid_argument "Hex.decode: odd length") (fun () ->
      ignore (Qkd_util.Hex.decode "abc"));
  Alcotest.check_raises "bad char" (Invalid_argument "Hex.decode: non-hex character")
    (fun () -> ignore (Qkd_util.Hex.decode "zz"))

(* -- Chan: the bounded cross-domain pipe under the engine pipeline -- *)

let test_chan_fifo_across_domains () =
  let c = Qkd_util.Chan.create ~capacity:4 in
  let n = 1000 in
  let producer =
    Domain.spawn (fun () ->
        for i = 1 to n do
          Qkd_util.Chan.send c i
        done;
        Qkd_util.Chan.close c)
  in
  let rec drain expected =
    match Qkd_util.Chan.recv c with
    | None -> expected - 1
    | Some v ->
        check_int "in order" expected v;
        drain (expected + 1)
  in
  let last = drain 1 in
  Domain.join producer;
  check_int "all received" n last

let test_chan_close_semantics () =
  let c = Qkd_util.Chan.create ~capacity:2 in
  Qkd_util.Chan.send c 1;
  Qkd_util.Chan.send c 2;
  Qkd_util.Chan.close c;
  check "drains after close" true (Qkd_util.Chan.recv c = Some 1);
  check "drains after close 2" true (Qkd_util.Chan.recv c = Some 2);
  check "then empty" true (Qkd_util.Chan.recv c = None);
  Alcotest.check_raises "send on closed raises" Qkd_util.Chan.Closed (fun () ->
      Qkd_util.Chan.send c 3);
  Alcotest.check_raises "capacity validated"
    (Invalid_argument "Chan.create: capacity must be >= 1") (fun () ->
      ignore (Qkd_util.Chan.create ~capacity:0 : int Qkd_util.Chan.t))

let test_chan_blocking_send_bounded () =
  (* a full channel blocks the producer until the consumer drains *)
  let c = Qkd_util.Chan.create ~capacity:1 in
  Qkd_util.Chan.send c 0;
  let producer = Domain.spawn (fun () -> Qkd_util.Chan.send c 1) in
  check "first out" true (Qkd_util.Chan.recv c = Some 0);
  check "unblocked producer's value" true (Qkd_util.Chan.recv c = Some 1);
  Domain.join producer;
  check_int "empty again" 0 (Qkd_util.Chan.length c)

let () =
  Alcotest.run "qkd_util"
    [
      ( "bitstring",
        [
          Alcotest.test_case "create zeroed" `Quick test_create_zeroed;
          Alcotest.test_case "set/get" `Quick test_set_get;
          Alcotest.test_case "bounds" `Quick test_bounds;
          Alcotest.test_case "of/to string" `Quick test_of_to_string;
          Alcotest.test_case "of_string invalid" `Quick test_of_string_invalid;
          Alcotest.test_case "flip" `Quick test_flip;
          Alcotest.test_case "xor" `Quick test_xor;
          Alcotest.test_case "xor mismatch" `Quick test_xor_length_mismatch;
          Alcotest.test_case "parity" `Quick test_parity;
          Alcotest.test_case "parity masked" `Quick test_parity_masked;
          Alcotest.test_case "sub/concat" `Quick test_sub_concat;
          Alcotest.test_case "sub bounds" `Quick test_sub_bounds;
          Alcotest.test_case "hamming" `Quick test_hamming;
          Alcotest.test_case "extract" `Quick test_extract;
          Alcotest.test_case "bytes roundtrip" `Quick test_bytes_roundtrip;
          Alcotest.test_case "of_bytes clears tail" `Quick test_of_bytes_clears_tail;
          Alcotest.test_case "append bit" `Quick test_append_bit;
          Alcotest.test_case "equal diff len" `Quick test_equal_diff_len;
          Alcotest.test_case "foldi/iteri" `Quick test_foldi_iteri;
          Alcotest.test_case "blit_int64 aligned" `Quick test_blit_int64_aligned;
          Alcotest.test_case "blit_int64 neighbours" `Quick
            test_blit_int64_preserves_neighbours;
          Alcotest.test_case "blit_int64 bounds" `Quick test_blit_int64_bounds;
          Alcotest.test_case "blit bounds" `Quick test_blit_bounds;
          qcheck prop_xor_involution;
          qcheck prop_popcount_matches_list;
          qcheck prop_sub_concat_id;
          qcheck prop_bytes_roundtrip;
          qcheck prop_blit_int64_matches_naive;
          qcheck prop_blit_matches_naive;
        ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "split independent" `Quick test_rng_split_independent;
          Alcotest.test_case "float range" `Quick test_rng_float_range;
          Alcotest.test_case "int range" `Quick test_rng_int_range;
          Alcotest.test_case "int invalid" `Quick test_rng_int_invalid;
          Alcotest.test_case "bool balanced" `Quick test_rng_bool_balanced;
          Alcotest.test_case "bernoulli extremes" `Quick test_rng_bernoulli_extremes;
          Alcotest.test_case "poisson mean" `Quick test_rng_poisson_mean;
          Alcotest.test_case "poisson zero" `Quick test_rng_poisson_zero;
          Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
          Alcotest.test_case "bits length" `Quick test_rng_bits_length;
          Alcotest.test_case "bits balanced" `Quick test_rng_bits_balanced;
          Alcotest.test_case "shuffle permutes" `Quick test_rng_shuffle_permutes;
          Alcotest.test_case "bytes length" `Quick test_rng_bytes_length;
          Alcotest.test_case "bits stream position" `Quick
            test_rng_bits_same_stream_position;
          Alcotest.test_case "derive order independent" `Quick
            test_rng_derive_order_independent;
          Alcotest.test_case "derive distinct" `Quick test_rng_derive_distinct;
          qcheck prop_rng_bits_matches_legacy;
        ] );
      ( "lfsr",
        [
          Alcotest.test_case "zero seed fixup" `Quick test_lfsr_zero_seed_fixup;
          Alcotest.test_case "deterministic" `Quick test_lfsr_deterministic;
          Alcotest.test_case "subset deterministic" `Quick test_lfsr_subset_deterministic;
          Alcotest.test_case "subset half density" `Quick test_lfsr_subset_half_density;
          Alcotest.test_case "seeds differ" `Quick test_lfsr_different_seeds_differ;
          Alcotest.test_case "nonzero period" `Quick test_lfsr_nonzero_period;
        ] );
      ( "rle",
        [
          Alcotest.test_case "roundtrip simple" `Quick test_rle_roundtrip_simple;
          Alcotest.test_case "empty" `Quick test_rle_empty;
          Alcotest.test_case "compresses runs" `Quick test_rle_compresses_runs;
          Alcotest.test_case "encoded_size" `Quick test_rle_encoded_size_consistent;
          Alcotest.test_case "symbol range" `Quick test_rle_symbol_range;
          Alcotest.test_case "bits roundtrip" `Quick test_rle_bits_roundtrip;
          Alcotest.test_case "malformed" `Quick test_rle_malformed;
          qcheck prop_rle_roundtrip;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean" `Quick test_stats_mean;
          Alcotest.test_case "mean empty" `Quick test_stats_mean_empty;
          Alcotest.test_case "variance" `Quick test_stats_variance;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
          Alcotest.test_case "percentile invalid" `Quick
            test_stats_percentile_invalid;
          Alcotest.test_case "percentile extremes" `Quick
            test_stats_percentile_extremes;
          Alcotest.test_case "binomial ci" `Quick test_stats_binomial_ci;
          Alcotest.test_case "binomial ci boundaries" `Quick
            test_stats_binomial_ci_boundaries;
          Alcotest.test_case "binomial ci invalid" `Quick
            test_stats_binomial_ci_invalid;
          Alcotest.test_case "histogram" `Quick test_stats_histogram;
        ] );
      ( "crc-hex",
        [
          Alcotest.test_case "crc32 known" `Quick test_crc32_known;
          Alcotest.test_case "crc32 detects flip" `Quick test_crc32_detects_flip;
          Alcotest.test_case "hex roundtrip" `Quick test_hex_roundtrip;
          Alcotest.test_case "hex invalid" `Quick test_hex_invalid;
        ] );
      ( "chan",
        [
          Alcotest.test_case "fifo across domains" `Quick
            test_chan_fifo_across_domains;
          Alcotest.test_case "close semantics" `Quick test_chan_close_semantics;
          Alcotest.test_case "blocking send bounded" `Quick
            test_chan_blocking_send_bounded;
        ] );
    ]
