(* Tests for qkd_ipsec: packets, SAs, ESP, SPD, IKE with QKD
   extensions, gateways and the assembled VPN. *)

module Packet = Qkd_ipsec.Packet
module Sa = Qkd_ipsec.Sa
module Esp = Qkd_ipsec.Esp
module Spd = Qkd_ipsec.Spd
module Ike = Qkd_ipsec.Ike
module Gateway = Qkd_ipsec.Gateway
module Vpn = Qkd_ipsec.Vpn
module Le = Qkd_ipsec.Link_encryption
module Isakmp = Qkd_ipsec.Isakmp
module Qtls = Qkd_ipsec.Quantum_tls
module Key_pool = Qkd_protocol.Key_pool
module Otp = Qkd_crypto.Otp
module Bs = Qkd_util.Bitstring
module Rng = Qkd_util.Rng
module Replay = Qkd_ipsec.Replay
module Pktbuf = Qkd_ipsec.Pktbuf
module Traffic = Qkd_ipsec.Traffic

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* -- Packet -- *)

let test_addr_roundtrip () =
  let a = Packet.addr_of_string "192.1.99.34" in
  Alcotest.(check string) "roundtrip" "192.1.99.34" (Packet.addr_to_string a)

let test_addr_invalid () =
  Alcotest.check_raises "octet" (Invalid_argument "Packet.addr_of_string: bad octet")
    (fun () -> ignore (Packet.addr_of_string "1.2.3.299"));
  Alcotest.check_raises "shape" (Invalid_argument "Packet.addr_of_string: expected a.b.c.d")
    (fun () -> ignore (Packet.addr_of_string "1.2.3"))

let test_subnet_match () =
  let net = Packet.addr_of_string "10.1.0.0" in
  check "inside /16" true
    (Packet.in_subnet (Packet.addr_of_string "10.1.77.3") ~net ~prefix:16);
  check "outside /16" false
    (Packet.in_subnet (Packet.addr_of_string "10.2.0.1") ~net ~prefix:16);
  check "/0 matches all" true
    (Packet.in_subnet (Packet.addr_of_string "8.8.8.8") ~net ~prefix:0)

let test_packet_serialize_parse () =
  let p =
    Packet.make
      ~src:(Packet.addr_of_string "10.1.0.5")
      ~dst:(Packet.addr_of_string "10.2.0.7")
      ~protocol:Packet.proto_udp ~ident:42 (Bytes.of_string "payload!")
  in
  let p' = Packet.parse (Packet.serialize p) in
  check "roundtrip" true (p = p')

let test_packet_checksum_detects_corruption () =
  let p =
    Packet.make
      ~src:(Packet.addr_of_string "10.1.0.5")
      ~dst:(Packet.addr_of_string "10.2.0.7")
      ~protocol:6 (Bytes.of_string "x")
  in
  let b = Packet.serialize p in
  Bytes.set b 12 '\xAA' (* corrupt source address *);
  try
    ignore (Packet.parse b);
    Alcotest.fail "should reject"
  with Packet.Malformed _ -> ()

let test_packet_length_check () =
  Alcotest.check_raises "short" (Packet.Malformed "short packet") (fun () ->
      ignore (Packet.parse (Bytes.create 10)))

(* -- SA -- *)

let make_sa ?(transform = Sa.Aes128_cbc) ?(lifetime = Sa.default_lifetime)
    ?(now = 0.0) () =
  let rng = Rng.create 600L in
  let enc_key = Rng.bytes rng (Sa.enc_key_bytes transform) in
  let auth_key = Rng.bytes rng Sa.auth_key_bytes in
  let otp_pad =
    match transform with Sa.Otp -> Some (Otp.pad_of_bits (Rng.bits rng 65536)) | _ -> None
  in
  Sa.create ~spi:0x1001l ~transform ~enc_key ~auth_key ?otp_pad ~lifetime ~now
    ~keyed_from_qkd:true ()

let test_sa_lifetime_seconds () =
  let sa = make_sa ~lifetime:{ Sa.seconds = 60.0; kilobytes = 1_000_000 } () in
  check "fresh" false (Sa.expired sa ~now:30.0);
  check "expired by time" true (Sa.expired sa ~now:61.0)

let test_sa_lifetime_kilobytes () =
  let sa = make_sa ~lifetime:{ Sa.seconds = 1e9; kilobytes = 1 } () in
  check "fresh" false (Sa.expired sa ~now:0.0);
  Sa.note_bytes sa 1025;
  check "expired by volume" true (Sa.expired sa ~now:0.0)

let test_sa_validation () =
  let rng = Rng.create 601L in
  Alcotest.check_raises "wrong key size" (Invalid_argument "Sa.create: wrong cipher key size")
    (fun () ->
      ignore
        (Sa.create ~spi:1l ~transform:Sa.Aes128_cbc ~enc_key:(Bytes.create 5)
           ~auth_key:(Rng.bytes rng 20) ~lifetime:Sa.default_lifetime ~now:0.0
           ~keyed_from_qkd:false ()));
  Alcotest.check_raises "otp needs pad" (Invalid_argument "Sa.create: OTP transform needs a pad")
    (fun () ->
      ignore
        (Sa.create ~spi:1l ~transform:Sa.Otp ~enc_key:Bytes.empty
           ~auth_key:(Rng.bytes rng 20) ~lifetime:Sa.default_lifetime ~now:0.0
           ~keyed_from_qkd:true ()))

(* -- ESP -- *)

let inner_packet () =
  Packet.make
    ~src:(Packet.addr_of_string "10.1.0.5")
    ~dst:(Packet.addr_of_string "10.2.0.7")
    ~protocol:Packet.proto_tcp (Bytes.of_string "secret enclave traffic")

let outer_src = Packet.addr_of_string "192.1.99.34"
let outer_dst = Packet.addr_of_string "192.1.99.35"

(* Build a mirrored SA pair sharing keys (as quick mode would). *)
let sa_pair ?(transform = Sa.Aes128_cbc) () =
  let rng = Rng.create 602L in
  let enc_key = Rng.bytes rng (Sa.enc_key_bytes transform) in
  let auth_key = Rng.bytes rng Sa.auth_key_bytes in
  let pad_bits = Rng.bits rng 65536 in
  let mk () =
    let otp_pad =
      match transform with
      | Sa.Otp -> Some (Otp.pad_of_bits (Bs.copy pad_bits))
      | _ -> None
    in
    Sa.create ~spi:0x2002l ~transform ~enc_key ~auth_key ?otp_pad
      ~lifetime:Sa.default_lifetime ~now:0.0 ~keyed_from_qkd:true ()
  in
  (mk (), mk ())

let test_esp_roundtrip_transforms () =
  List.iter
    (fun transform ->
      let tx, rx = sa_pair ~transform () in
      let rng = Rng.create 603L in
      let p = inner_packet () in
      match Esp.encapsulate tx ~rng ~outer_src ~outer_dst p with
      | Ok outer -> (
          check "esp proto" true (outer.Packet.protocol = Packet.proto_esp);
          match Esp.decapsulate rx ~replay:(Replay.create ()) outer with
          | Ok inner -> check "inner intact" true (inner = p)
          | Error e -> Alcotest.failf "decap: %a" Esp.pp_error e)
      | Error e -> Alcotest.failf "encap: %a" Esp.pp_error e)
    [ Sa.Aes128_cbc; Sa.Aes256_cbc; Sa.Des3_cbc; Sa.Otp ]

let test_esp_auth_failure_on_tamper () =
  let tx, rx = sa_pair () in
  let rng = Rng.create 604L in
  match Esp.encapsulate tx ~rng ~outer_src ~outer_dst (inner_packet ()) with
  | Ok outer -> (
      let payload = Bytes.copy outer.Packet.payload in
      Bytes.set payload 12 '\xFF';
      let tampered = { outer with Packet.payload = payload } in
      match Esp.decapsulate rx ~replay:(Replay.create ()) tampered with
      | Error Esp.Auth_failed -> ()
      | Ok _ -> Alcotest.fail "tamper accepted"
      | Error e -> Alcotest.failf "unexpected: %a" Esp.pp_error e)
  | Error e -> Alcotest.failf "encap: %a" Esp.pp_error e

let test_esp_wrong_key_fails () =
  let tx, _ = sa_pair () in
  let _, rx2 =
    let rng = Rng.create 999L in
    let enc_key = Rng.bytes rng 16 in
    let auth_key = Rng.bytes rng 20 in
    let mk () =
      Sa.create ~spi:0x2002l ~transform:Sa.Aes128_cbc ~enc_key ~auth_key
        ~lifetime:Sa.default_lifetime ~now:0.0 ~keyed_from_qkd:true ()
    in
    (mk (), mk ())
  in
  let rng = Rng.create 605L in
  match Esp.encapsulate tx ~rng ~outer_src ~outer_dst (inner_packet ()) with
  | Ok outer -> (
      match Esp.decapsulate rx2 ~replay:(Replay.create ()) outer with
      | Error Esp.Auth_failed -> ()
      | Ok _ -> Alcotest.fail "wrong key decrypted"
      | Error e -> Alcotest.failf "unexpected: %a" Esp.pp_error e)
  | Error e -> Alcotest.failf "encap: %a" Esp.pp_error e

let test_esp_replay_rejected () =
  let tx, rx = sa_pair () in
  let rng = Rng.create 606L in
  let replay = Replay.create () in
  match Esp.encapsulate tx ~rng ~outer_src ~outer_dst (inner_packet ()) with
  | Ok outer -> (
      (match Esp.decapsulate rx ~replay outer with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "first: %a" Esp.pp_error e);
      match Esp.decapsulate rx ~replay outer with
      | Error (Esp.Replay _) -> ()
      | Ok _ -> Alcotest.fail "replay accepted"
      | Error e -> Alcotest.failf "unexpected: %a" Esp.pp_error e)
  | Error e -> Alcotest.failf "encap: %a" Esp.pp_error e

let test_esp_otp_consumes_pad () =
  let tx, rx = sa_pair ~transform:Sa.Otp () in
  let rng = Rng.create 607L in
  let before =
    match tx.Sa.otp_pad with Some pad -> Otp.remaining pad | None -> 0
  in
  (match Esp.encapsulate tx ~rng ~outer_src ~outer_dst (inner_packet ()) with
  | Ok outer -> (
      match Esp.decapsulate rx ~replay:(Replay.create ()) outer with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "decap: %a" Esp.pp_error e)
  | Error e -> Alcotest.failf "encap: %a" Esp.pp_error e);
  let after = match tx.Sa.otp_pad with Some pad -> Otp.remaining pad | None -> 0 in
  check "pad consumed" true (after < before)

let test_esp_otp_exhaustion () =
  let rng = Rng.create 608L in
  let enc_key = Bytes.empty in
  let auth_key = Rng.bytes rng 20 in
  let tx =
    Sa.create ~spi:1l ~transform:Sa.Otp ~enc_key ~auth_key
      ~otp_pad:(Otp.pad_of_bits (Rng.bits rng 64))
      ~lifetime:Sa.default_lifetime ~now:0.0 ~keyed_from_qkd:true ()
  in
  match Esp.encapsulate tx ~rng ~outer_src ~outer_dst (inner_packet ()) with
  | Error Esp.Pad_exhausted -> ()
  | Ok _ -> Alcotest.fail "should exhaust"
  | Error e -> Alcotest.failf "unexpected: %a" Esp.pp_error e

let encap_or_fail tx ~rng =
  match Esp.encapsulate tx ~rng ~outer_src ~outer_dst (inner_packet ()) with
  | Ok outer -> outer
  | Error e -> Alcotest.failf "encap: %a" Esp.pp_error e

let test_esp_replay_window_accepts_reorder () =
  (* Regression for the expected_seq bug: the old strict counter
     advanced on every acceptance, so a late (reordered) packet was
     dropped and, worse, a replay of the latest packet could pass.
     RFC 4303 windowing accepts the late arrival once and rejects
     every replay. *)
  let tx, rx = sa_pair () in
  let rng = Rng.create 610L in
  let replay = Replay.create () in
  let o1 = encap_or_fail tx ~rng in
  let o2 = encap_or_fail tx ~rng in
  let o3 = encap_or_fail tx ~rng in
  let expect_ok label outer =
    match Esp.decapsulate rx ~replay outer with
    | Ok _ -> ()
    | Error e -> Alcotest.failf "%s: %a" label Esp.pp_error e
  in
  let expect_replay label outer =
    match Esp.decapsulate rx ~replay outer with
    | Error (Esp.Replay _) -> ()
    | Ok _ -> Alcotest.failf "%s accepted twice" label
    | Error e -> Alcotest.failf "%s: %a" label Esp.pp_error e
  in
  expect_ok "seq 1" o1;
  expect_ok "seq 3 (ahead)" o3;
  expect_ok "seq 2 (late)" o2;
  expect_replay "replay of seq 1" o1;
  expect_replay "replay of seq 2" o2;
  expect_replay "replay of seq 3" o3

let test_esp_replay_window_expires_old () =
  let tx, rx = sa_pair () in
  let rng = Rng.create 611L in
  let replay = Replay.create () in
  let first = encap_or_fail tx ~rng in
  let last = ref first in
  for _ = 2 to Replay.window_size + 7 do
    last := encap_or_fail tx ~rng
  done;
  (match Esp.decapsulate rx ~replay !last with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "latest: %a" Esp.pp_error e);
  check_int "window top" (Replay.window_size + 7) (Replay.top replay);
  (* seq 1 has fallen behind the window: even a first delivery is
     indistinguishable from a replay and must be refused *)
  match Esp.decapsulate rx ~replay first with
  | Error (Esp.Replay { seq }) -> check_int "stale seq" 1 seq
  | Ok _ -> Alcotest.fail "stale packet accepted"
  | Error e -> Alcotest.failf "unexpected: %a" Esp.pp_error e

let test_esp_seq_exhaustion_boundary () =
  let tx, rx = sa_pair () in
  let rng = Rng.create 612L in
  tx.Sa.seq <- Esp.seq_max - 1;
  (* the final sequence number is still usable... *)
  (match Esp.encapsulate tx ~rng ~outer_src ~outer_dst (inner_packet ()) with
  | Ok outer -> (
      check_int "final seq consumed" Esp.seq_max tx.Sa.seq;
      match Esp.decapsulate rx ~replay:(Replay.create ()) outer with
      | Ok inner -> check "inner intact" true (inner = inner_packet ())
      | Error e -> Alcotest.failf "peer rejects final seq: %a" Esp.pp_error e)
  | Error e -> Alcotest.failf "penultimate must encap: %a" Esp.pp_error e);
  (* ...but one more would truncate on the 32-bit wire field *)
  (match Esp.encapsulate tx ~rng ~outer_src ~outer_dst (inner_packet ()) with
  | Error Esp.Seq_exhausted -> ()
  | Ok _ -> Alcotest.fail "wrapped the 32-bit counter"
  | Error e -> Alcotest.failf "unexpected: %a" Esp.pp_error e);
  let inner = Packet.serialize (inner_packet ()) in
  let dst = Bytes.create 512 in
  check_int "kernel refuses too" Esp.err_seq_exhausted
    (Esp.encap_into tx ~scratch:(Esp.make_scratch ()) ~rng ~outer_src
       ~outer_dst ~src:inner ~src_pos:0 ~len:(Bytes.length inner) ~dst
       ~dst_pos:0)

let test_esp_malformed_inputs_clean_errors () =
  List.iter
    (fun transform ->
      let tx, rx = sa_pair ~transform () in
      let rng = Rng.create 613L in
      let outer = encap_or_fail tx ~rng in
      let with_payload f =
        let payload = Bytes.copy outer.Packet.payload in
        f payload;
        { outer with Packet.payload = payload }
      in
      let expect_error label p =
        match Esp.decapsulate rx ~replay:(Replay.create ()) p with
        | Error _ -> ()
        | Ok _ -> Alcotest.failf "%s accepted" label
      in
      let plen = Bytes.length outer.Packet.payload in
      expect_error "truncated ICV"
        { outer with Packet.payload = Bytes.sub outer.Packet.payload 0 (plen - 4) };
      expect_error "runt payload"
        { outer with Packet.payload = Bytes.sub outer.Packet.payload 0 6 };
      (match
         Esp.decapsulate rx ~replay:(Replay.create ())
           (with_payload (fun b -> Bytes.set b 0 '\xEE'))
       with
      | Error (Esp.Wrong_spi _) -> ()
      | Ok _ -> Alcotest.fail "wrong SPI accepted"
      | Error e -> Alcotest.failf "wrong spi: %a" Esp.pp_error e);
      (* the sequence field is covered by the ICV *)
      expect_error "corrupted seq" (with_payload (fun b -> Bytes.set b 7 '\xEE')))
    [ Sa.Aes128_cbc; Sa.Aes256_cbc; Sa.Des3_cbc; Sa.Otp ]

let test_esp_otp_forged_length_word () =
  (* Even an attacker holding the MAC key (so the ICV verifies) must
     not crash the receiver with a bad OTP length word. *)
  let tx, rx = sa_pair ~transform:Sa.Otp () in
  let rng = Rng.create 614L in
  let outer = encap_or_fail tx ~rng in
  let payload = Bytes.copy outer.Packet.payload in
  Bytes.set payload 11 '\x7F' (* low byte of the length word at [8..12) *);
  let body_len = Bytes.length payload - 12 in
  let icv =
    Qkd_crypto.Hmac.mac_96 ~hash:Qkd_crypto.Hmac.SHA1 ~key:rx.Sa.auth_key
      (Bytes.sub payload 0 body_len)
  in
  Bytes.blit icv 0 payload body_len 12;
  match
    Esp.decapsulate rx ~replay:(Replay.create ())
      { outer with Packet.payload = payload }
  with
  | Error Esp.Decrypt_failed -> ()
  | Ok _ -> Alcotest.fail "forged length word accepted"
  | Error e -> Alcotest.failf "unexpected: %a" Esp.pp_error e

(* -- SPD -- *)

let test_spd_first_match_order () =
  let spd = Spd.create () in
  let sel = Spd.subnet_selector ~src:"10.1.0.0" ~src_prefix:16 ~dst:"10.2.0.0" ~dst_prefix:16 in
  Spd.add spd { Spd.selector = sel; action = Spd.Drop };
  Spd.add spd { Spd.selector = sel; action = Spd.Bypass };
  let p =
    Packet.make
      ~src:(Packet.addr_of_string "10.1.0.1")
      ~dst:(Packet.addr_of_string "10.2.0.1")
      ~protocol:6 Bytes.empty
  in
  (match Spd.lookup spd p with
  | Some { Spd.action = Spd.Drop; _ } -> ()
  | _ -> Alcotest.fail "first match should win");
  let q =
    Packet.make
      ~src:(Packet.addr_of_string "172.16.0.1")
      ~dst:(Packet.addr_of_string "10.2.0.1")
      ~protocol:6 Bytes.empty
  in
  check "no match" true (Spd.lookup spd q = None)

let test_spd_protocol_selector () =
  let spd = Spd.create () in
  let sel =
    {
      (Spd.subnet_selector ~src:"0.0.0.0" ~src_prefix:0 ~dst:"0.0.0.0" ~dst_prefix:0) with
      Spd.protocol = Some Packet.proto_udp;
    }
  in
  Spd.add spd { Spd.selector = sel; action = Spd.Drop };
  let udp = Packet.make ~src:1l ~dst:2l ~protocol:Packet.proto_udp Bytes.empty in
  let tcp = Packet.make ~src:1l ~dst:2l ~protocol:Packet.proto_tcp Bytes.empty in
  check "udp matches" true (Spd.lookup spd udp <> None);
  check "tcp passes" true (Spd.lookup spd tcp = None)

(* -- ISAKMP codec -- *)

let sample_message =
  {
    Isakmp.initiator_cookie = 0x0123456789ABCDEFL;
    responder_cookie = -1L;
    exchange = Isakmp.Quick_mode;
    message_id = 42l;
    payloads =
      [
        Isakmp.Hash_payload (Bytes.of_string "20-bytes-of-hash-data");
        Isakmp.Sa_payload
          {
            doi = 1;
            proposals =
              [
                {
                  Isakmp.proposal_number = 1;
                  protocol_id = 3;
                  spi = Bytes.of_string "\x01\x02\x03\x04";
                  transforms =
                    [
                      {
                        Isakmp.transform_number = 1;
                        transform_id = 12;
                        attributes = [ (6, 128); (5, 2) ];
                      };
                    ];
                };
              ];
          };
        Isakmp.Nonce_payload (Bytes.of_string "nonce-bytes-here");
        Isakmp.Qkd_payload { offered_qblocks = 1; bits_per_qblock = 1024 };
        Isakmp.Id_payload { id_type = 1; data = Bytes.of_string "192.1.99.34" };
        Isakmp.Notification_payload { notify_type = 16384; data = Bytes.empty };
      ];
  }

let test_isakmp_roundtrip () =
  let decoded = Isakmp.decode (Isakmp.encode sample_message) in
  check "roundtrip" true (decoded = sample_message)

let test_isakmp_empty_payloads () =
  let m = { sample_message with Isakmp.payloads = [] } in
  check "empty roundtrip" true (Isakmp.decode (Isakmp.encode m) = m)

let test_isakmp_length_enforced () =
  let b = Isakmp.encode sample_message in
  Alcotest.check_raises "truncated" (Isakmp.Malformed "length field mismatch")
    (fun () -> ignore (Isakmp.decode (Bytes.sub b 0 (Bytes.length b - 3))))

let test_isakmp_version_check () =
  let b = Isakmp.encode sample_message in
  Bytes.set b 17 '\x20';
  Alcotest.check_raises "version" (Isakmp.Malformed "unsupported ISAKMP version")
    (fun () -> ignore (Isakmp.decode b))

let test_isakmp_qkd_payload_values () =
  match Isakmp.decode (Isakmp.encode sample_message) with
  | { Isakmp.payloads; _ } ->
      let found =
        List.exists
          (function
            | Isakmp.Qkd_payload { offered_qblocks = 1; bits_per_qblock = 1024 } -> true
            | _ -> false)
          payloads
      in
      check "qkd payload survives" true found

let test_isakmp_wire_bytes_counted () =
  let rng0 = Rng.create 750L in
  let material = Rng.bits rng0 8192 in
  let pool_a = Key_pool.create ~initial:(Bs.copy material) () in
  let pool_b = Key_pool.create ~initial:material () in
  let ea =
    Ike.create_endpoint
      ~identity:{ Ike.name = "a"; addr = Packet.addr_of_string "1.1.1.1" }
      ~psk:(Bytes.of_string "s") ~key_pool:pool_a ~seed:1L
  in
  let eb =
    Ike.create_endpoint
      ~identity:{ Ike.name = "b"; addr = Packet.addr_of_string "2.2.2.2" }
      ~psk:(Bytes.of_string "s") ~key_pool:pool_b ~seed:2L
  in
  (match Ike.phase1 ~initiator:ea ~responder:eb ~now:0.0 () with
  | Ok () -> ()
  | Error e -> Alcotest.failf "phase1: %a" Ike.pp_error e);
  (* main mode: 6 real messages including two 128-byte KE payloads *)
  let after_p1 = Ike.bytes_on_wire ea + Ike.bytes_on_wire eb in
  check "phase1 bytes" true (after_p1 > 400);
  (match
     Ike.phase2 ~initiator:ea ~responder:eb ~now:0.0
       ~protect:
         {
           Spd.transform = Sa.Aes128_cbc;
           lifetime = Sa.default_lifetime;
           qkd = Spd.Reseed;
           peer = Packet.addr_of_string "2.2.2.2";
           qblock_bits = 1024;
         }
       ()
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "phase2: %a" Ike.pp_error e);
  check "quick mode added bytes" true (Ike.bytes_on_wire ea + Ike.bytes_on_wire eb > after_p1 + 100)

(* -- IKE -- *)

let mirrored_pools bits =
  let rng = Rng.create 700L in
  let material = Rng.bits rng bits in
  ( Key_pool.create ~initial:(Bs.copy material) (),
    Key_pool.create ~initial:material () )

let endpoints ?(psk_b = "shared-secret") ~qbits () =
  let pool_a, pool_b = mirrored_pools qbits in
  let ea =
    Ike.create_endpoint
      ~identity:{ Ike.name = "alice-gw"; addr = Packet.addr_of_string "192.1.99.34" }
      ~psk:(Bytes.of_string "shared-secret") ~key_pool:pool_a ~seed:1L
  in
  let eb =
    Ike.create_endpoint
      ~identity:{ Ike.name = "bob-gw"; addr = Packet.addr_of_string "192.1.99.35" }
      ~psk:(Bytes.of_string psk_b) ~key_pool:pool_b ~seed:2L
  in
  (ea, eb)

let reseed_protect =
  {
    Spd.transform = Sa.Aes128_cbc;
    lifetime = Sa.default_lifetime;
    qkd = Spd.Reseed;
    peer = Packet.addr_of_string "192.1.99.35";
    qblock_bits = 1024;
  }

let test_ike_phase1_required () =
  let ea, eb = endpoints ~qbits:4096 () in
  match Ike.phase2 ~initiator:ea ~responder:eb ~now:0.0 ~protect:reseed_protect () with
  | Error Ike.No_phase1 -> ()
  | Ok _ -> Alcotest.fail "phase 2 before phase 1"
  | Error e -> Alcotest.failf "unexpected: %a" Ike.pp_error e

let test_ike_psk_mismatch () =
  let ea, eb = endpoints ~psk_b:"wrong" ~qbits:4096 () in
  match Ike.phase1 ~initiator:ea ~responder:eb ~now:0.0 () with
  | Error Ike.Psk_mismatch -> ()
  | Ok () -> Alcotest.fail "psk mismatch accepted"
  | Error e -> Alcotest.failf "unexpected: %a" Ike.pp_error e

let test_ike_quick_mode_keys_match () =
  let ea, eb = endpoints ~qbits:4096 () in
  (match Ike.phase1 ~initiator:ea ~responder:eb ~now:0.0 () with
  | Ok () -> ()
  | Error e -> Alcotest.failf "phase1: %a" Ike.pp_error e);
  match Ike.phase2 ~initiator:ea ~responder:eb ~now:0.0 ~protect:reseed_protect () with
  | Ok (pi, pr) ->
      (* initiator's outbound must mirror responder's inbound *)
      check "enc keys match" true
        (Bytes.equal pi.Ike.outbound.Sa.enc_key pr.Ike.inbound.Sa.enc_key);
      check "auth keys match" true
        (Bytes.equal pi.Ike.outbound.Sa.auth_key pr.Ike.inbound.Sa.auth_key);
      check "reverse dir too" true
        (Bytes.equal pi.Ike.inbound.Sa.enc_key pr.Ike.outbound.Sa.enc_key);
      check "marked qkd" true pi.Ike.outbound.Sa.keyed_from_qkd;
      check_int "qbits billed" 1024 (Ike.qbits_consumed ea)
  | Error e -> Alcotest.failf "phase2: %a" Ike.pp_error e

let test_ike_not_enough_qbits () =
  let ea, eb = endpoints ~qbits:100 () in
  (match Ike.phase1 ~initiator:ea ~responder:eb ~now:0.0 () with
  | Ok () -> ()
  | Error e -> Alcotest.failf "phase1: %a" Ike.pp_error e);
  match Ike.phase2 ~initiator:ea ~responder:eb ~now:0.0 ~protect:reseed_protect () with
  | Error (Ike.Not_enough_qbits { wanted = 1024; _ }) -> ()
  | Ok _ -> Alcotest.fail "should starve"
  | Error e -> Alcotest.failf "unexpected: %a" Ike.pp_error e

let test_ike_diverged_pools_mismatch_keys () =
  (* pools with different content: negotiation "succeeds", keys differ *)
  let rng = Rng.create 701L in
  let pool_a = Key_pool.create ~initial:(Rng.bits rng 4096) () in
  let pool_b = Key_pool.create ~initial:(Rng.bits rng 4096) () in
  let ea =
    Ike.create_endpoint
      ~identity:{ Ike.name = "a"; addr = Packet.addr_of_string "1.1.1.1" }
      ~psk:(Bytes.of_string "s") ~key_pool:pool_a ~seed:1L
  in
  let eb =
    Ike.create_endpoint
      ~identity:{ Ike.name = "b"; addr = Packet.addr_of_string "2.2.2.2" }
      ~psk:(Bytes.of_string "s") ~key_pool:pool_b ~seed:2L
  in
  (match Ike.phase1 ~initiator:ea ~responder:eb ~now:0.0 () with
  | Ok () -> ()
  | Error e -> Alcotest.failf "phase1: %a" Ike.pp_error e);
  match Ike.phase2 ~initiator:ea ~responder:eb ~now:0.0 ~protect:reseed_protect () with
  | Ok (pi, pr) ->
      check "IKE does not notice" true true;
      check "keys differ silently" false
        (Bytes.equal pi.Ike.outbound.Sa.enc_key pr.Ike.inbound.Sa.enc_key)
  | Error e -> Alcotest.failf "phase2: %a" Ike.pp_error e

let test_ike_log_mentions_qblocks () =
  let ea, eb = endpoints ~qbits:4096 () in
  ignore (Ike.phase1 ~initiator:ea ~responder:eb ~now:0.0 ());
  ignore (Ike.phase2 ~initiator:ea ~responder:eb ~now:0.0 ~protect:reseed_protect ());
  let log = String.concat "\n" (Ike.log ea @ Ike.log eb) in
  let has sub =
    let n = String.length log and m = String.length sub in
    let rec go i = i + m <= n && (String.sub log i m = sub || go (i + 1)) in
    go 0
  in
  check "Qblocks logged" true (has "Qblocks");
  check "KEYMAT QBITS logged" true (has "QBITS");
  check "SA established logged" true (has "IPsec-SA established")

(* -- Gateway counters and inbound expiry -- *)

let udp ~src ~dst bytes =
  Packet.make
    ~src:(Packet.addr_of_string src)
    ~dst:(Packet.addr_of_string dst)
    ~protocol:Packet.proto_udp (Bytes.create bytes)

let test_gateway_dropped_counts_policy_drop () =
  let v = Vpn.create Vpn.default_config in
  let gw = Vpn.gateway_a v in
  let selector =
    {
      Spd.src_net = Packet.addr_of_string "10.1.0.0";
      src_prefix = 16;
      dst_net = Packet.addr_of_string "10.9.0.0";
      dst_prefix = 16;
      protocol = None;
    }
  in
  Spd.add (Gateway.spd gw) { Spd.selector; action = Spd.Drop };
  (match Gateway.outbound gw ~now:0.0 (udp ~src:"10.1.0.5" ~dst:"10.9.0.1" 32) with
  | Gateway.Dropped _ -> ()
  | Gateway.Tunnel _ | Gateway.Bypass _ | Gateway.Need_rekey _ ->
      Alcotest.fail "policy says drop");
  check_int "dropped counted" 1 (Gateway.stats gw).Gateway.dropped

let test_gateway_dropped_counts_inbound_rejects () =
  let v = Vpn.create Vpn.default_config in
  let gw = Vpn.gateway_a v in
  let esp payload_bytes =
    Packet.make
      ~src:(Packet.addr_of_string "192.1.99.35")
      ~dst:(Packet.addr_of_string "192.1.99.34")
      ~protocol:Packet.proto_esp (Bytes.create payload_bytes)
  in
  (match Gateway.inbound gw ~now:0.0 (esp 4) with
  | Gateway.Rejected _ -> ()
  | Gateway.Deliver _ | Gateway.Bypass_in _ -> Alcotest.fail "short ESP must reject");
  (match Gateway.inbound gw ~now:0.0 (esp 16) with
  | Gateway.Rejected _ -> ()
  | Gateway.Deliver _ | Gateway.Bypass_in _ -> Alcotest.fail "unknown SPI must reject");
  check_int "both rejects counted" 2 (Gateway.stats gw).Gateway.dropped

let test_gateway_inbound_sa_expiry_forces_rekey () =
  let v = Vpn.create Vpn.default_config in
  Vpn.run v ~duration:10.0 ~dt:0.1;
  let a = Vpn.gateway_a v and b = Vpn.gateway_b v in
  let outer =
    match Gateway.outbound a ~now:10.0 (udp ~src:"10.1.0.5" ~dst:"10.2.0.7" 64) with
    | Gateway.Tunnel outer -> outer
    | Gateway.Bypass _ | Gateway.Dropped _ | Gateway.Need_rekey _ ->
        Alcotest.fail "live SA should tunnel"
  in
  let dropped_before = (Gateway.stats b).Gateway.dropped in
  (* The packet arrives long after the inbound SA's lifetime: it must
     be rejected, counted, and the SA pair cleared. *)
  (match Gateway.inbound b ~now:1000.0 outer with
  | Gateway.Rejected reason ->
      Alcotest.(check string) "names expiry" "inbound SA expired" reason
  | Gateway.Deliver _ | Gateway.Bypass_in _ ->
      Alcotest.fail "expired inbound SA must reject");
  check_int "reject counted" (dropped_before + 1) (Gateway.stats b).Gateway.dropped;
  (* Mirror of outbound rollover: the cleared pair sends the next
     outbound packet down the rekey path. *)
  match Gateway.outbound b ~now:1000.0 (udp ~src:"10.2.0.7" ~dst:"10.1.0.5" 64) with
  | Gateway.Need_rekey _ -> ()
  | Gateway.Tunnel _ | Gateway.Bypass _ | Gateway.Dropped _ ->
      Alcotest.fail "cleared pair must renegotiate"

(* A standalone gateway with one protect policy and directly installed
   SAs — no IKE, so tests fully control the SA state. *)
let mk_gateway ~name ~wan ~lan ~peer ~lan_remote ~seed =
  let gw =
    Gateway.create ~name ~wan ~lan ~lan_prefix:16
      ~psk:(Bytes.of_string "batch-test") ~key_pool:(Key_pool.create ()) ~seed
  in
  Gateway.add_protect_policy gw ~lan_remote ~remote_prefix:16
    {
      Spd.transform = Sa.Aes128_cbc;
      lifetime = Sa.default_lifetime;
      qkd = Spd.Reseed;
      peer = Packet.addr_of_string peer;
      qblock_bits = 1024;
    };
  gw

let test_gateway_seq_exhaustion_forces_rekey () =
  let gw =
    mk_gateway ~name:"gwA" ~wan:"192.1.99.34" ~lan:"10.1.0.0"
      ~peer:"192.1.99.35" ~lan_remote:"10.2.0.0" ~seed:901L
  in
  let tx, rx = sa_pair () in
  Gateway.install_sas gw
    ~peer:(Packet.addr_of_string "192.1.99.35")
    ~outbound:tx ~inbound:rx;
  (* one sequence number left: the packet still goes out... *)
  tx.Sa.seq <- Esp.seq_max - 1;
  (match Gateway.outbound gw ~now:0.0 (udp ~src:"10.1.0.5" ~dst:"10.2.0.7" 64) with
  | Gateway.Tunnel _ -> ()
  | Gateway.Bypass _ | Gateway.Dropped _ | Gateway.Need_rekey _ ->
      Alcotest.fail "final seq should tunnel");
  (* ...and the next must roll the SA over, not wrap the counter *)
  match Gateway.outbound gw ~now:0.0 (udp ~src:"10.1.0.5" ~dst:"10.2.0.7" 64) with
  | Gateway.Need_rekey _ -> ()
  | Gateway.Tunnel _ | Gateway.Bypass _ | Gateway.Dropped _ ->
      Alcotest.fail "exhausted seq space must force rekey"

let test_gateway_batch_matches_scalar () =
  (* same seeds, same SAs, same traffic: the batch dataplane must emit
     byte-identical wire packets and identical counters to the scalar
     path *)
  let build () =
    let a =
      mk_gateway ~name:"bgA" ~wan:"192.1.99.34" ~lan:"10.1.0.0"
        ~peer:"192.1.99.35" ~lan_remote:"10.2.0.0" ~seed:905L
    in
    let b =
      mk_gateway ~name:"bgB" ~wan:"192.1.99.35" ~lan:"10.2.0.0"
        ~peer:"192.1.99.34" ~lan_remote:"10.1.0.0" ~seed:906L
    in
    let tx, rx_unused = sa_pair () in
    let tx_unused, rx = sa_pair () in
    Gateway.install_sas a
      ~peer:(Packet.addr_of_string "192.1.99.35")
      ~outbound:tx ~inbound:rx_unused;
    Gateway.install_sas b
      ~peer:(Packet.addr_of_string "192.1.99.34")
      ~outbound:tx_unused ~inbound:rx;
    (a, b)
  in
  let mk_traffic () =
    Traffic.create ~src_net:"10.1.5.0" ~dst_net:"10.2.9.0" ~flows:6
      ~payload_len:48 ()
  in
  let batch_a, batch_b = build () in
  let scalar_a, scalar_b = build () in
  let traffic_batch = mk_traffic () and traffic_scalar = mk_traffic () in
  let n = 32 in
  let pool = Pktbuf.create ~capacity:512 (3 * n) in
  let src = Array.init n (fun _ -> Pktbuf.alloc pool) in
  let mid = Array.init n (fun _ -> Pktbuf.alloc pool) in
  let out = Array.init n (fun _ -> Pktbuf.alloc pool) in
  Array.iter (fun b -> ignore (Traffic.next_into traffic_batch b)) src;
  check_int "all encapsulated" n
    (Gateway.outbound_batch batch_a ~now:0.0 ~src ~dst:mid ~count:n);
  check_int "all decapsulated" n
    (Gateway.inbound_batch batch_b ~now:0.0 ~src:mid ~dst:out ~count:n);
  for i = 0 to n - 1 do
    let p = Traffic.next_packet traffic_scalar in
    let outer =
      match Gateway.outbound scalar_a ~now:0.0 p with
      | Gateway.Tunnel outer -> outer
      | Gateway.Bypass _ | Gateway.Dropped _ | Gateway.Need_rekey _ ->
          Alcotest.failf "scalar outbound %d did not tunnel" i
    in
    check "wire bytes identical" true
      (Bytes.equal (Packet.serialize outer) (Pktbuf.contents mid.(i)));
    match Gateway.inbound scalar_b ~now:0.0 outer with
    | Gateway.Deliver inner ->
        check "inner packets identical" true
          (Bytes.equal (Packet.serialize inner) (Pktbuf.contents out.(i)));
        check "traffic round-trips" true (inner = p)
    | Gateway.Bypass_in _ | Gateway.Rejected _ ->
        Alcotest.failf "scalar inbound %d did not deliver" i
  done;
  let sa = Gateway.stats scalar_a and ba = Gateway.stats batch_a in
  let sb = Gateway.stats scalar_b and bb = Gateway.stats batch_b in
  check_int "sent parity" sa.Gateway.sent ba.Gateway.sent;
  check_int "received parity" sb.Gateway.received bb.Gateway.received;
  check_int "no batch drops" 0 (ba.Gateway.dropped + bb.Gateway.dropped);
  check_int "no batch esp errors" 0 (ba.Gateway.esp_errors + bb.Gateway.esp_errors);
  (* a replayed batch is fully rejected and counted *)
  let replayed = Gateway.inbound_batch batch_b ~now:0.0 ~src:mid ~dst:out ~count:n in
  check_int "replays produce nothing" 0 replayed;
  check_int "replays counted as esp errors" n (Gateway.stats batch_b).Gateway.esp_errors

let test_gateway_batch_bypass_and_drop () =
  let gw =
    mk_gateway ~name:"bgC" ~wan:"192.1.99.34" ~lan:"10.1.0.0"
      ~peer:"192.1.99.35" ~lan_remote:"10.2.0.0" ~seed:907L
  in
  (* no SA installed: protected traffic waits on a rekey (no output);
     unprotected traffic is bypassed unchanged *)
  let pool = Pktbuf.create ~capacity:512 4 in
  let src = Array.init 2 (fun _ -> Pktbuf.alloc pool) in
  let dst = Array.init 2 (fun _ -> Pktbuf.alloc pool) in
  Pktbuf.fill src.(0)
    (Packet.serialize (udp ~src:"10.1.0.5" ~dst:"10.2.0.7" 32));
  Pktbuf.fill src.(1)
    (Packet.serialize (udp ~src:"10.1.0.5" ~dst:"172.16.0.1" 32));
  check_int "only the bypass emerges" 1
    (Gateway.outbound_batch gw ~now:0.0 ~src ~dst ~count:2);
  check_int "protected packet held for rekey" 0 dst.(0).Pktbuf.len;
  check "bypass unchanged" true
    (Bytes.equal (Pktbuf.contents src.(1)) (Pktbuf.contents dst.(1)))

(* -- VPN end-to-end -- *)

let test_vpn_reseed_delivers () =
  let v = Vpn.create Vpn.default_config in
  Vpn.run v ~duration:120.0 ~dt:0.1;
  let s = Vpn.stats v in
  check "most delivered" true
    (float_of_int s.Vpn.delivered /. float_of_int s.Vpn.attempted > 0.9);
  check "rekeys happened" true (s.Vpn.rekeys >= 2);
  check_int "no blackholes" 0 s.Vpn.blackholed

let test_vpn_key_starvation_drops () =
  let starved = { Vpn.default_config with Vpn.key_source = Vpn.Modeled 10.0 } in
  let v = Vpn.create starved in
  Vpn.run v ~duration:120.0 ~dt:0.1;
  let s = Vpn.stats v in
  check "mostly dropped for lack of key" true
    (s.Vpn.drop_no_key > s.Vpn.delivered)

let test_vpn_otp_static_preload () =
  let cfg =
    {
      Vpn.default_config with
      Vpn.transform = Sa.Otp;
      qkd = Spd.Otp_mode;
      qblock_bits = 262_144;
      key_source = Vpn.Static 2_000_000;
      packets_per_second = 10.0;
      packet_bytes = 128;
    }
  in
  let v = Vpn.create cfg in
  Vpn.run v ~duration:60.0 ~dt:0.1;
  let s = Vpn.stats v in
  check "otp carries traffic" true
    (float_of_int s.Vpn.delivered /. float_of_int (max 1 s.Vpn.attempted) > 0.9)

let test_vpn_otp_pad_race () =
  (* OTP demand (10 pkt/s x 128 B = 10240 b/s) far beyond supply *)
  let cfg =
    {
      Vpn.default_config with
      Vpn.transform = Sa.Otp;
      qkd = Spd.Otp_mode;
      qblock_bits = 65_536;
      key_source = Vpn.Modeled 400.0;
      packets_per_second = 10.0;
      packet_bytes = 128;
    }
  in
  let v = Vpn.create cfg in
  Vpn.run v ~duration:120.0 ~dt:0.1;
  let s = Vpn.stats v in
  check "key race lost" true (s.Vpn.drop_no_key > s.Vpn.delivered)

let test_vpn_skew_blackhole_then_heal () =
  let v = Vpn.create Vpn.default_config in
  Vpn.run v ~duration:30.0 ~dt:0.1;
  let before = (Vpn.stats v).Vpn.blackholed in
  Vpn.skew_pool v ~bits:64;
  Vpn.run v ~duration:180.0 ~dt:0.1;
  let s = Vpn.stats v in
  check_int "clean before skew" 0 before;
  (* roughly one 60 s lifetime of traffic blackholes (50 pkt/s) *)
  check "blackholed a lifetime" true (s.Vpn.blackholed > 2000 && s.Vpn.blackholed < 4500);
  (* and the tunnel healed: deliveries continued after *)
  check "healed" true (s.Vpn.delivered > 4000)

let test_vpn_ike_log_fig12_shape () =
  let v = Vpn.create Vpn.default_config in
  Vpn.run v ~duration:20.0 ~dt:0.1;
  let log = String.concat "\n" (Vpn.ike_log v) in
  let has sub =
    let n = String.length log and m = String.length sub in
    let rec go i = i + m <= n && (String.sub log i m = sub || go (i + 1)) in
    go 0
  in
  check "phase 2 negotiation" true (has "phase 2 negotiation");
  check "Qblocks offer/reply" true (has "Qblocks");
  check "KEYMAT QBITS" true (has "KEYMAT using");
  check "SA established" true (has "IPsec-SA established")

(* -- Link encryption chain (section 8 second variant) -- *)

let test_le_delivers_intact () =
  let t = Le.create Le.default_config in
  Le.advance t ~seconds:30.0;
  let payload = Bytes.of_string "across four QKD tunnels" in
  (match Le.send t ~now:30.0 payload with
  | Ok received -> check "intact" true (Bytes.equal received payload)
  | Error _ -> Alcotest.fail "should deliver");
  let s = Le.stats t in
  check_int "delivered" 1 s.Le.delivered;
  check_int "cleartext relays" 3 s.Le.cleartext_relays;
  check "each hop rekeyed" true (s.Le.rekeys >= Le.default_config.Le.hops)

let test_le_starves_without_key () =
  let t = Le.create Le.default_config in
  (* no advance: pools are empty *)
  match Le.send t ~now:0.0 (Bytes.of_string "x") with
  | Error (Le.No_key { hop = 0 }) -> ()
  | Ok _ -> Alcotest.fail "no key anywhere"
  | Error e ->
      Alcotest.failf "wrong error: %s"
        (match e with
        | Le.No_key { hop } -> Printf.sprintf "no key at %d" hop
        | Le.Hop_failed { reason; _ } -> reason)

let test_le_rollover_on_lifetime () =
  let cfg = { Le.default_config with Le.lifetime = { Sa.seconds = 10.0; kilobytes = 1_000_000 } } in
  let t = Le.create cfg in
  Le.advance t ~seconds:60.0;
  let now = ref 0.0 in
  for _ = 1 to 50 do
    now := !now +. 1.0;
    Le.advance t ~seconds:1.0;
    ignore (Le.send t ~now:!now (Bytes.of_string "tick"))
  done;
  let s = Le.stats t in
  (* 50 s / 10 s lifetime on 4 hops: several generations of SAs *)
  check "rolled repeatedly" true (s.Le.rekeys > 3 * 4);
  check "mostly delivered" true (s.Le.delivered > 40)

let test_le_otp_chain () =
  let cfg =
    {
      Le.default_config with
      Le.transform = Sa.Otp;
      qkd = Spd.Otp_mode;
      qblock_bits = 16_384;
      per_link_key_rate_bps = 2_000.0;
    }
  in
  let t = Le.create cfg in
  Le.advance t ~seconds:60.0;
  let payload = Bytes.of_string "pad me across the mesh" in
  match Le.send t ~now:60.0 payload with
  | Ok received -> check "otp chain intact" true (Bytes.equal received payload)
  | Error (Le.No_key { hop }) -> Alcotest.failf "no key at hop %d" hop
  | Error (Le.Hop_failed { reason; _ }) -> Alcotest.failf "hop failed: %s" reason

let prop_packet_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"packet serialize/parse roundtrip" ~count:200
       QCheck.(triple small_nat small_nat string)
       (fun (s, d, payload) ->
         let addr v = Int32.of_int (v * 7919) in
         let p =
           Packet.make ~src:(addr s) ~dst:(addr d) ~protocol:(s mod 256)
             (Bytes.of_string payload)
         in
         Packet.parse (Packet.serialize p) = p))

let prop_esp_roundtrip_any_payload =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"esp roundtrip any payload" ~count:50 QCheck.string
       (fun payload ->
         let tx, rx = sa_pair () in
         let rng = Rng.create 900L in
         let p =
           Packet.make ~src:(Packet.addr_of_string "10.1.0.5")
             ~dst:(Packet.addr_of_string "10.2.0.7")
             ~protocol:Packet.proto_udp (Bytes.of_string payload)
         in
         match Esp.encapsulate tx ~rng ~outer_src ~outer_dst p with
         | Ok outer -> (
             match Esp.decapsulate rx ~replay:(Replay.create ()) outer with
             | Ok inner -> inner = p
             | Error _ -> false)
         | Error _ -> false))

let transforms = [| Sa.Aes128_cbc; Sa.Aes256_cbc; Sa.Des3_cbc; Sa.Otp |]

let prop_esp_roundtrip_all_transforms =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"esp roundtrip, every transform" ~count:60
       QCheck.(pair (int_bound 3) (string_of_size Gen.(int_range 0 300)))
       (fun (ti, payload) ->
         let tx, rx = sa_pair ~transform:transforms.(ti) () in
         let rng = Rng.create 902L in
         let p =
           Packet.make ~src:(Packet.addr_of_string "10.1.0.5")
             ~dst:(Packet.addr_of_string "10.2.0.7")
             ~protocol:Packet.proto_udp (Bytes.of_string payload)
         in
         match Esp.encapsulate tx ~rng ~outer_src ~outer_dst p with
         | Ok outer -> (
             match Esp.decapsulate rx ~replay:(Replay.create ()) outer with
             | Ok inner -> inner = p
             | Error _ -> false)
         | Error _ -> false))

let prop_esp_corruption_rejected_cleanly =
  (* any single-byte corruption of the wire packet must come back as a
     negative code / [Error] on both paths — never an exception *)
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"esp corruption rejected on both paths" ~count:100
       QCheck.(triple (int_bound 3) small_nat (int_range 1 255))
       (fun (ti, idx, flip) ->
         let tx, rx = sa_pair ~transform:transforms.(ti) () in
         let rng = Rng.create 903L in
         let scratch = Esp.make_scratch () in
         let inner = Packet.serialize (inner_packet ()) in
         let wire = Bytes.create 512 in
         let n =
           Esp.encap_into tx ~scratch ~rng ~outer_src ~outer_dst ~src:inner
             ~src_pos:0 ~len:(Bytes.length inner) ~dst:wire ~dst_pos:0
         in
         n > 0
         &&
         let pos = idx mod n in
         Bytes.set wire pos (Char.chr (Char.code (Bytes.get wire pos) lxor flip));
         let out = Bytes.create 512 in
         Esp.decap_into rx ~scratch ~replay:(Replay.create ()) ~src:wire
           ~src_pos:0 ~len:n ~dst:out ~dst_pos:0
         < 0
         && (* and the scalar path agrees the packet is bad *)
         match Packet.parse (Bytes.sub wire 0 n) with
         | exception Packet.Malformed _ -> true
         | p -> (
             match Esp.decapsulate rx ~replay:(Replay.create ()) p with
             | Error _ -> true
             | Ok _ -> false)))

let prop_esp_fast_path_matches_scalar =
  (* the tentpole equivalence: mirrored SA pairs and identical RNG
     streams, then every encapsulation, decapsulation and replay
     verdict must be byte-for-byte identical between the scalar path
     and the zero-allocation kernels *)
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"esp kernels byte-identical to scalar path"
       ~count:30
       QCheck.(
         pair (int_bound 3)
           (list_of_size Gen.(int_range 1 8) (string_of_size Gen.(int_range 0 120))))
       (fun (ti, payloads) ->
         let transform = transforms.(ti) in
         let tx_s, rx_s = sa_pair ~transform () in
         let tx_f, rx_f = sa_pair ~transform () in
         let rng_s = Rng.create 904L and rng_f = Rng.create 904L in
         let replay_s = Replay.create () and replay_f = Replay.create () in
         let scratch = Esp.make_scratch () in
         List.for_all
           (fun payload ->
             let p =
               Packet.make ~src:(Packet.addr_of_string "10.1.0.5")
                 ~dst:(Packet.addr_of_string "10.2.0.7")
                 ~protocol:Packet.proto_udp (Bytes.of_string payload)
             in
             let inner = Packet.serialize p in
             let wire_f = Bytes.create 1024 and out_f = Bytes.create 1024 in
             let n =
               Esp.encap_into tx_f ~scratch ~rng:rng_f ~outer_src ~outer_dst
                 ~src:inner ~src_pos:0 ~len:(Bytes.length inner) ~dst:wire_f
                 ~dst_pos:0
             in
             match Esp.encapsulate tx_s ~rng:rng_s ~outer_src ~outer_dst p with
             | Error _ -> n < 0
             | Ok outer -> (
                 let wire_s = Packet.serialize outer in
                 n = Bytes.length wire_s
                 && Bytes.equal wire_s (Bytes.sub wire_f 0 n)
                 &&
                 match Esp.decapsulate rx_s ~replay:replay_s outer with
                 | Error _ -> false
                 | Ok inner_s -> (
                     let m =
                       Esp.decap_into rx_f ~scratch ~replay:replay_f
                         ~src:wire_f ~src_pos:0 ~len:n ~dst:out_f ~dst_pos:0
                     in
                     m = Bytes.length inner
                     && Bytes.equal (Packet.serialize inner_s)
                          (Bytes.sub out_f 0 m)
                     &&
                     (* a replay is refused identically on both paths *)
                     match Esp.decapsulate rx_s ~replay:replay_s outer with
                     | Error (Esp.Replay { seq }) ->
                         Esp.error_of_code
                           (Esp.decap_into rx_f ~scratch ~replay:replay_f
                              ~src:wire_f ~src_pos:0 ~len:n ~dst:out_f
                              ~dst_pos:0)
                           ~seq ~spi:rx_f.Sa.spi
                         = Esp.Replay { seq }
                     | Ok _ | Error _ -> false)))
           payloads))

(* -- Quantum TLS (the §7 portability claim) -- *)

let qtls_pools bits =
  let rng = Rng.create 760L in
  let material = Rng.bits rng bits in
  ( Key_pool.create ~initial:(Bs.copy material) (),
    Key_pool.create ~initial:material () )

let test_qtls_handshake_and_records () =
  let client_pool, server_pool = qtls_pools 4096 in
  let rng = Rng.create 761L in
  match Qtls.handshake ~client_pool ~server_pool ~rng ~qblock_bits:1024 with
  | Ok (client, server) ->
      check_int "same block id" (Qtls.qblock_id client) (Qtls.qblock_id server);
      check_int "qblock consumed" 3072 (Key_pool.available client_pool);
      let msg = Bytes.of_string "GET /quantum HTTP/1.0" in
      (match Qtls.receive server (Qtls.send client msg) with
      | Ok data -> check "record intact" true (Bytes.equal data msg)
      | Error _ -> Alcotest.fail "record failed");
      (* and the reverse direction *)
      let reply = Bytes.of_string "200 OK" in
      (match Qtls.receive client (Qtls.send server reply) with
      | Ok data -> check "reply intact" true (Bytes.equal data reply)
      | Error _ -> Alcotest.fail "reply failed")
  | Error _ -> Alcotest.fail "handshake should succeed"

let test_qtls_starves () =
  let client_pool, server_pool = qtls_pools 100 in
  let rng = Rng.create 762L in
  match Qtls.handshake ~client_pool ~server_pool ~rng ~qblock_bits:1024 with
  | Error (Qtls.Not_enough_qbits { wanted; _ }) -> check_int "wanted" 1024 wanted
  | Ok _ -> Alcotest.fail "should starve"
  | Error Qtls.Finished_mismatch -> Alcotest.fail "wrong error"

let test_qtls_diverged_pools_caught () =
  (* unlike IKE, the Finished exchange catches mismatched quantum bits *)
  let rng0 = Rng.create 763L in
  let client_pool = Key_pool.create ~initial:(Rng.bits rng0 2048) () in
  let server_pool = Key_pool.create ~initial:(Rng.bits rng0 2048) () in
  let rng = Rng.create 764L in
  match Qtls.handshake ~client_pool ~server_pool ~rng ~qblock_bits:1024 with
  | Error Qtls.Finished_mismatch -> ()
  | Ok _ -> Alcotest.fail "divergence missed"
  | Error (Qtls.Not_enough_qbits _) -> Alcotest.fail "wrong error"

let test_qtls_record_tamper () =
  let client_pool, server_pool = qtls_pools 4096 in
  let rng = Rng.create 765L in
  match Qtls.handshake ~client_pool ~server_pool ~rng ~qblock_bits:1024 with
  | Ok (client, server) -> (
      let record = Qtls.send client (Bytes.of_string "sensitive") in
      Bytes.set record 20 (Char.chr (Char.code (Bytes.get record 20) lxor 1));
      match Qtls.receive server record with
      | Error (Qtls.Bad_mac | Qtls.Bad_record) -> ()
      | Ok _ -> Alcotest.fail "tamper accepted")
  | Error _ -> Alcotest.fail "handshake"

let test_qtls_replay_rejected () =
  let client_pool, server_pool = qtls_pools 4096 in
  let rng = Rng.create 766L in
  match Qtls.handshake ~client_pool ~server_pool ~rng ~qblock_bits:1024 with
  | Ok (client, server) -> (
      let record = Qtls.send client (Bytes.of_string "once only") in
      (match Qtls.receive server record with
      | Ok _ -> ()
      | Error _ -> Alcotest.fail "first receive");
      (* replaying shifts the expected sequence: MAC no longer checks *)
      match Qtls.receive server record with
      | Error Qtls.Bad_mac -> ()
      | Ok _ -> Alcotest.fail "replay accepted"
      | Error Qtls.Bad_record -> Alcotest.fail "wrong error")
  | Error _ -> Alcotest.fail "handshake"

let prop_isakmp_roundtrip =
  let payload_gen =
    QCheck.Gen.(
      oneof
        [
          map (fun s -> Isakmp.Ke_payload (Bytes.of_string s)) (string_size (int_range 0 64));
          map (fun s -> Isakmp.Nonce_payload (Bytes.of_string s)) (string_size (int_range 0 32));
          map (fun s -> Isakmp.Hash_payload (Bytes.of_string s)) (string_size (int_range 0 32));
          map (fun s -> Isakmp.Vendor_payload (Bytes.of_string s)) (string_size (int_range 0 16));
          map2
            (fun a b -> Isakmp.Qkd_payload { offered_qblocks = a; bits_per_qblock = b })
            (int_range 0 1000) (int_range 0 100_000);
          map2
            (fun ty s -> Isakmp.Id_payload { id_type = ty; data = Bytes.of_string s })
            (int_range 0 255) (string_size (int_range 0 24));
        ])
  in
  let msg_gen =
    QCheck.Gen.(
      map2
        (fun payloads mid ->
          {
            Isakmp.initiator_cookie = 0x1122334455667788L;
            responder_cookie = 0x99AABBCCDDEEFF00L;
            exchange = Isakmp.Quick_mode;
            message_id = Int32.of_int mid;
            payloads;
          })
        (list_size (int_range 0 6) payload_gen)
        (int_range 0 1_000_000))
  in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"isakmp roundtrip (generated)" ~count:200
       (QCheck.make msg_gen)
       (fun m -> Isakmp.decode (Isakmp.encode m) = m))

let () =
  Alcotest.run "qkd_ipsec"
    [
      ( "packet",
        [
          Alcotest.test_case "addr roundtrip" `Quick test_addr_roundtrip;
          Alcotest.test_case "addr invalid" `Quick test_addr_invalid;
          Alcotest.test_case "subnet" `Quick test_subnet_match;
          Alcotest.test_case "serialize/parse" `Quick test_packet_serialize_parse;
          Alcotest.test_case "checksum" `Quick test_packet_checksum_detects_corruption;
          Alcotest.test_case "length check" `Quick test_packet_length_check;
        ] );
      ( "sa",
        [
          Alcotest.test_case "lifetime seconds" `Quick test_sa_lifetime_seconds;
          Alcotest.test_case "lifetime kilobytes" `Quick test_sa_lifetime_kilobytes;
          Alcotest.test_case "validation" `Quick test_sa_validation;
        ] );
      ( "esp",
        [
          Alcotest.test_case "roundtrip all transforms" `Quick test_esp_roundtrip_transforms;
          Alcotest.test_case "tamper" `Quick test_esp_auth_failure_on_tamper;
          Alcotest.test_case "wrong key" `Quick test_esp_wrong_key_fails;
          Alcotest.test_case "replay" `Quick test_esp_replay_rejected;
          Alcotest.test_case "otp consumes pad" `Quick test_esp_otp_consumes_pad;
          Alcotest.test_case "otp exhaustion" `Quick test_esp_otp_exhaustion;
          Alcotest.test_case "replay window reorder" `Quick
            test_esp_replay_window_accepts_reorder;
          Alcotest.test_case "replay window expiry" `Quick
            test_esp_replay_window_expires_old;
          Alcotest.test_case "seq exhaustion boundary" `Quick
            test_esp_seq_exhaustion_boundary;
          Alcotest.test_case "malformed inputs" `Quick
            test_esp_malformed_inputs_clean_errors;
          Alcotest.test_case "otp forged length word" `Quick
            test_esp_otp_forged_length_word;
        ] );
      ( "spd",
        [
          Alcotest.test_case "first match" `Quick test_spd_first_match_order;
          Alcotest.test_case "protocol selector" `Quick test_spd_protocol_selector;
        ] );
      ( "isakmp",
        [
          Alcotest.test_case "roundtrip" `Quick test_isakmp_roundtrip;
          Alcotest.test_case "empty payloads" `Quick test_isakmp_empty_payloads;
          Alcotest.test_case "length enforced" `Quick test_isakmp_length_enforced;
          Alcotest.test_case "version check" `Quick test_isakmp_version_check;
          Alcotest.test_case "qkd payload" `Quick test_isakmp_qkd_payload_values;
          Alcotest.test_case "wire bytes counted" `Quick test_isakmp_wire_bytes_counted;
        ] );
      ( "ike",
        [
          Alcotest.test_case "phase1 required" `Quick test_ike_phase1_required;
          Alcotest.test_case "psk mismatch" `Quick test_ike_psk_mismatch;
          Alcotest.test_case "quick mode keys" `Quick test_ike_quick_mode_keys_match;
          Alcotest.test_case "not enough qbits" `Quick test_ike_not_enough_qbits;
          Alcotest.test_case "diverged pools" `Quick test_ike_diverged_pools_mismatch_keys;
          Alcotest.test_case "log mentions qblocks" `Quick test_ike_log_mentions_qblocks;
        ] );
      ( "properties",
        [
          prop_packet_roundtrip;
          prop_esp_roundtrip_any_payload;
          prop_esp_roundtrip_all_transforms;
          prop_esp_corruption_rejected_cleanly;
          prop_esp_fast_path_matches_scalar;
          prop_isakmp_roundtrip;
        ] );
      ( "quantum-tls",
        [
          Alcotest.test_case "handshake + records" `Quick test_qtls_handshake_and_records;
          Alcotest.test_case "starves" `Quick test_qtls_starves;
          Alcotest.test_case "diverged pools caught" `Quick test_qtls_diverged_pools_caught;
          Alcotest.test_case "record tamper" `Quick test_qtls_record_tamper;
          Alcotest.test_case "replay rejected" `Quick test_qtls_replay_rejected;
        ] );
      ( "link-encryption",
        [
          Alcotest.test_case "delivers intact" `Quick test_le_delivers_intact;
          Alcotest.test_case "starves without key" `Quick test_le_starves_without_key;
          Alcotest.test_case "rollover" `Quick test_le_rollover_on_lifetime;
          Alcotest.test_case "otp chain" `Quick test_le_otp_chain;
        ] );
      ( "gateway",
        [
          Alcotest.test_case "dropped counts policy drop" `Quick
            test_gateway_dropped_counts_policy_drop;
          Alcotest.test_case "dropped counts inbound rejects" `Quick
            test_gateway_dropped_counts_inbound_rejects;
          Alcotest.test_case "inbound expiry forces rekey" `Quick
            test_gateway_inbound_sa_expiry_forces_rekey;
          Alcotest.test_case "seq exhaustion forces rekey" `Quick
            test_gateway_seq_exhaustion_forces_rekey;
          Alcotest.test_case "batch matches scalar" `Quick
            test_gateway_batch_matches_scalar;
          Alcotest.test_case "batch bypass and rekey hold" `Quick
            test_gateway_batch_bypass_and_drop;
        ] );
      ( "vpn",
        [
          Alcotest.test_case "reseed delivers" `Slow test_vpn_reseed_delivers;
          Alcotest.test_case "key starvation" `Slow test_vpn_key_starvation_drops;
          Alcotest.test_case "otp preload" `Slow test_vpn_otp_static_preload;
          Alcotest.test_case "otp pad race" `Slow test_vpn_otp_pad_race;
          Alcotest.test_case "skew blackhole heal" `Slow test_vpn_skew_blackhole_then_heal;
          Alcotest.test_case "ike log shape" `Quick test_vpn_ike_log_fig12_shape;
        ] );
    ]
