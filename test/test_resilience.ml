(* Tests for the PR 4 resilience layer: key-aware rerouting with
   reserve-then-commit, pool watermarks, the retrying scheduler, and
   the failure-churn experiment (resilient vs no-retry baseline). *)

module Sim = Qkd_net.Sim
module Topology = Qkd_net.Topology
module Relay = Qkd_net.Relay
module Scheduler = Qkd_net.Scheduler
module Failure = Qkd_net.Failure
module Fiber = Qkd_photonics.Fiber

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Nodes 0-1-2 in a chain plus a longer 0-3-4-2 detour: the unique
   hop-shortest route 0-2 is via 1, with one disjoint fallback. *)
let detour_topology () =
  let t = Topology.create () in
  for i = 0 to 4 do
    ignore (Topology.add_node t ~name:(Printf.sprintf "n%d" i) ~kind:Topology.Trusted_relay)
  done;
  List.iter
    (fun (a, b) -> Topology.add_edge t a b (Fiber.make ~length_km:10.0 ()))
    [ (0, 1); (1, 2); (0, 3); (3, 4); (4, 2) ];
  t

(* Drain the pairwise pool on (a, b) down to [leave] bits via a direct
   single-hop request. *)
let drain relay a b ~leave =
  let avail = int_of_float (Relay.pool_bits relay a b) in
  if avail > leave then
    match Relay.request_key relay ~src:a ~dst:b ~bits:(avail - leave) with
    | Ok _ -> ()
    | Error _ -> Alcotest.fail "drain request should succeed"

(* -- Key-aware rerouting -- *)

let test_reroute_around_depleted_edge () =
  let topo = detour_topology () in
  let r = Relay.create topo in
  Relay.advance r ~seconds:60.0;
  drain r 0 1 ~leave:100;
  (* Static: the hop-shortest route 0-1-2 cannot pay 256 bits. *)
  (match Relay.request_key ~policy:Relay.Static r ~src:0 ~dst:2 ~bits:256 with
  | Error (Relay.Insufficient_key { edge; _ }) ->
      check "dry hop named" true (edge = (0, 1) || edge = (1, 2))
  | Ok _ -> Alcotest.fail "static route should be depleted"
  | Error Relay.No_route -> Alcotest.fail "route exists");
  (* Resilient: same request is rerouted over the 0-3-4-2 detour. *)
  match Relay.request_key r ~src:0 ~dst:2 ~bits:256 with
  | Ok d ->
      Alcotest.(check (list int)) "detour path" [ 0; 3; 4; 2 ] d.Relay.path;
      check "flagged rerouted" true d.Relay.rerouted;
      check_int "reroute counted" 1 (Relay.reroutes r);
      check_int "full key" 256 (Qkd_util.Bitstring.length d.Relay.key)
  | Error _ -> Alcotest.fail "detour should deliver"

let test_reroute_around_down_edge () =
  let topo = detour_topology () in
  let r = Relay.create topo in
  Relay.advance r ~seconds:60.0;
  Topology.set_edge topo 0 1 ~up:false;
  match Relay.request_key r ~src:0 ~dst:2 ~bits:256 with
  | Ok d ->
      Alcotest.(check (list int)) "detour path" [ 0; 3; 4; 2 ] d.Relay.path;
      check "flagged rerouted" true d.Relay.rerouted
  | Error _ -> Alcotest.fail "detour should deliver around the cut"

let test_shortest_route_not_flagged_rerouted () =
  let topo = detour_topology () in
  let r = Relay.create topo in
  Relay.advance r ~seconds:60.0;
  match Relay.request_key r ~src:0 ~dst:2 ~bits:256 with
  | Ok d ->
      check "not rerouted" false d.Relay.rerouted;
      check_int "no reroutes counted" 0 (Relay.reroutes r)
  | Error _ -> Alcotest.fail "healthy mesh should deliver"

(* -- Reserve-then-commit rollback -- *)

let test_rollback_restores_pools () =
  let topo = Topology.chain ~n:1 ~kind:Topology.Trusted_relay ~fiber_km:10.0 in
  let r = Relay.create topo in
  Relay.advance r ~seconds:60.0;
  (* Deplete the second hop only; the first hop can still pay. *)
  drain r 1 2 ~leave:10;
  let first_hop_before = Relay.pool_bits r 0 1 in
  let consumed_before = Relay.total_consumed_bits r in
  (match Relay.request_key r ~src:0 ~dst:2 ~bits:256 with
  | Error (Relay.Insufficient_key _) -> ()
  | Ok _ -> Alcotest.fail "second hop cannot pay"
  | Error Relay.No_route -> Alcotest.fail "route exists");
  Alcotest.(check (float 1e-9))
    "first hop rolled back" first_hop_before (Relay.pool_bits r 0 1);
  check_int "no half-spend counted" consumed_before (Relay.total_consumed_bits r);
  (* The rolled-back pad is re-consumable: a 1-hop request still works. *)
  match Relay.request_key r ~src:0 ~dst:1 ~bits:256 with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "rolled-back bits should be reusable"

let test_conservation_over_mixed_requests () =
  let topo = detour_topology () in
  let r = Relay.create topo in
  Relay.advance r ~seconds:60.0;
  let expected = ref 0 in
  for i = 0 to 19 do
    let bits = 64 + (i * 16) in
    match Relay.request_key r ~src:0 ~dst:2 ~bits with
    | Ok d -> expected := !expected + (bits * (List.length d.Relay.path - 1))
    | Error _ -> ()
  done;
  check_int "consumed = bits x hops of deliveries" !expected
    (Relay.total_consumed_bits r)

(* -- Watermarks -- *)

let test_high_watermark_caps_pools () =
  let topo = detour_topology () in
  let r = Relay.create ~high_watermark:1000 topo in
  Relay.advance r ~seconds:120.0;
  List.iter
    (fun (e : Topology.edge) ->
      check "pool capped" true (Relay.pool_bits r e.Topology.a e.Topology.b <= 1000.0))
    (Topology.edges topo)

let test_low_watermark_redistributes_surplus () =
  let topo = Topology.chain ~n:1 ~kind:Topology.Trusted_relay ~fiber_km:10.0 in
  let r = Relay.create ~low_watermark:10_000 ~high_watermark:12_000 topo in
  let rate = Relay.link_rate r 0 1 in
  (* Fill both edges to the high-watermark cap, then empty one. *)
  Relay.advance r ~seconds:(14_000.0 /. rate);
  Alcotest.(check (float 1.0)) "capped" 12_000.0 (Relay.pool_bits r 1 2);
  drain r 0 1 ~leave:0;
  (* The capped edge's stranded generation is redistributed to the
     drained edge (below the low mark), so it refills at roughly twice
     its own rate. *)
  Relay.advance r ~seconds:10.0;
  let refilled = Relay.pool_bits r 0 1 in
  check "priority refill beats own rate" true (refilled > 1.5 *. rate *. 10.0);
  check "but not more than both rates" true (refilled <= 2.0 *. rate *. 10.0 +. 2.0);
  Alcotest.(check (float 1.0)) "donor stays capped" 12_000.0 (Relay.pool_bits r 1 2)

let test_default_watermarks_inert () =
  let mk watermarked =
    let topo = Topology.chain ~n:1 ~kind:Topology.Trusted_relay ~fiber_km:10.0 in
    let r =
      if watermarked then Relay.create ~low_watermark:0 topo else Relay.create topo
    in
    Relay.advance r ~seconds:37.0;
    Relay.pool_bits r 0 1
  in
  Alcotest.(check (float 1e-9)) "identical fill" (mk false) (mk true)

(* -- Scheduler -- *)

let test_scheduler_delivers_after_retry () =
  let topo = Topology.chain ~n:1 ~kind:Topology.Trusted_relay ~fiber_km:10.0 in
  let r = Relay.create topo in
  (* Pools start empty; replenishment lands at t = 1 s, so the first
     attempt and the 0.5 s retry fail, the 1.5 s retry delivers. *)
  let sim = Sim.create () in
  let sched = Scheduler.create ~sim r in
  Sim.schedule sim ~at:1.0 (fun () -> Relay.advance r ~seconds:30.0);
  Scheduler.submit sched ~src:0 ~dst:2 ~bits:256;
  Sim.run sim ~until:60.0;
  let s = Scheduler.stats sched in
  check_int "delivered" 1 s.Scheduler.delivered;
  check_int "nothing pending" 0 s.Scheduler.pending;
  check "retried" true (s.Scheduler.retries >= 1);
  match Scheduler.reports sched with
  | [ rep ] ->
      check "multiple attempts" true (rep.Scheduler.attempts >= 2);
      check "positive latency" true (rep.Scheduler.completed_s > rep.Scheduler.submitted_s);
      (match rep.Scheduler.outcome with
      | Scheduler.Delivered d ->
          check_int "full key" 256 (Qkd_util.Bitstring.length d.Relay.key)
      | Scheduler.Gave_up _ -> Alcotest.fail "should deliver")
  | _ -> Alcotest.fail "exactly one report"

let test_scheduler_queue_full_sheds () =
  let topo = Topology.chain ~n:1 ~kind:Topology.Trusted_relay ~fiber_km:10.0 in
  let r = Relay.create topo in
  let sim = Sim.create () in
  let config = { Scheduler.default_config with Scheduler.max_pending = 1 } in
  let sched = Scheduler.create ~config ~sim r in
  (* Empty pools: the first submission stays pending on backoff, the
     second hits the bounded queue and is shed immediately. *)
  Scheduler.submit sched ~src:0 ~dst:2 ~bits:256;
  Scheduler.submit sched ~src:0 ~dst:2 ~bits:256;
  let shed =
    List.filter
      (fun rep -> rep.Scheduler.outcome = Scheduler.Gave_up Scheduler.Queue_full)
      (Scheduler.reports sched)
  in
  check_int "one shed" 1 (List.length shed);
  check_int "still one pending" 1 (Scheduler.stats sched).Scheduler.pending

let test_scheduler_attempts_exhausted () =
  let topo = Topology.chain ~n:1 ~kind:Topology.Trusted_relay ~fiber_km:10.0 in
  let r = Relay.create topo in
  let sim = Sim.create () in
  let config =
    {
      Scheduler.default_config with
      Scheduler.max_attempts = 3;
      base_backoff_s = 0.1;
      max_backoff_s = 1.0;
      deadline_s = 100.0;
    }
  in
  let sched = Scheduler.create ~config ~sim r in
  Scheduler.submit sched ~src:0 ~dst:2 ~bits:256;
  Sim.run sim ~until:50.0;
  match Scheduler.reports sched with
  | [ rep ] ->
      check "attempts exhausted" true
        (rep.Scheduler.outcome = Scheduler.Gave_up Scheduler.Attempts_exhausted);
      check_int "all attempts used" 3 rep.Scheduler.attempts;
      check_int "retries = attempts - 1" 2 (Scheduler.stats sched).Scheduler.retries
  | _ -> Alcotest.fail "exactly one report"

let test_scheduler_deadline_exceeded () =
  let topo = Topology.chain ~n:1 ~kind:Topology.Trusted_relay ~fiber_km:10.0 in
  let r = Relay.create topo in
  let sim = Sim.create () in
  let config = { Scheduler.default_config with Scheduler.deadline_s = 2.0 } in
  let sched = Scheduler.create ~config ~sim r in
  (* Backoffs 0.5, 1.0 fit inside the 2 s deadline; the 2.0 backoff
     after the third failure would land at 3.5 s, so it gives up. *)
  Scheduler.submit sched ~src:0 ~dst:2 ~bits:256;
  Sim.run sim ~until:50.0;
  match Scheduler.reports sched with
  | [ rep ] ->
      check "deadline exceeded" true
        (rep.Scheduler.outcome = Scheduler.Gave_up Scheduler.Deadline_exceeded);
      check_int "three attempts made" 3 rep.Scheduler.attempts
  | _ -> Alcotest.fail "exactly one report"

let test_scheduler_report_ring_bounded () =
  let topo = Topology.chain ~n:1 ~kind:Topology.Trusted_relay ~fiber_km:10.0 in
  let r = Relay.create topo in
  Relay.advance r ~seconds:120.0;
  let sim = Sim.create () in
  let config = { Scheduler.default_config with Scheduler.report_capacity = 4 } in
  let sched = Scheduler.create ~config ~sim r in
  for _ = 1 to 10 do
    Scheduler.submit sched ~src:0 ~dst:2 ~bits:64
  done;
  Sim.run sim ~until:10.0;
  let s = Scheduler.stats sched in
  (* Counts stay exact past the window; the window holds the newest 4. *)
  check_int "all delivered" 10 s.Scheduler.delivered;
  check_int "all resolved" 10 (Scheduler.resolved sched);
  check_int "window bounded" 4 (List.length (Scheduler.reports sched));
  (* 0 -> 2 crosses two edges, so each 64-bit delivery spends 128. *)
  check_int "pad bits exact" (10 * 64 * 2) (Scheduler.delivered_pad_bits sched);
  List.iter
    (fun rep ->
      check "window reports delivered" true
        (match rep.Scheduler.outcome with
        | Scheduler.Delivered _ -> true
        | Scheduler.Gave_up _ -> false))
    (Scheduler.reports sched)

(* -- Failure churn: the acceptance experiment -- *)

let churn_run scheduler =
  let topo = Topology.random_mesh ~nodes:10 ~degree:3.5 ~seed:5L ~fiber_km:10.0 in
  let relay = Relay.create ~low_watermark:2048 ~high_watermark:200_000 topo in
  Relay.advance relay ~seconds:30.0;
  let cfg =
    {
      Failure.default_churn_config with
      Failure.pairs = [ (0, 9); (1, 8); (2, 7) ];
      duration_s = 150.0;
      mtbf_s = 120.0;
      mttr_s = 40.0;
      request_bits = 512;
      request_interval_s = 0.5;
      scheduler;
    }
  in
  Failure.churn ~seed:77L relay cfg

let test_churn_resilient_beats_baseline () =
  let base = churn_run None in
  let res = churn_run (Some Scheduler.default_config) in
  check "baseline lossy under churn" true (base.Failure.delivery_ratio < 1.0);
  check "resilient strictly better" true
    (res.Failure.delivery_ratio > base.Failure.delivery_ratio);
  check "failures actually happened" true (res.Failure.link_failures > 0);
  check "retries used" true (res.Failure.retries > 0)

let test_churn_conserves_pads () =
  let base = churn_run None in
  let res = churn_run (Some Scheduler.default_config) in
  check "baseline conserves" true base.Failure.conservation_ok;
  check "resilient conserves" true res.Failure.conservation_ok;
  check_int "baseline exact" base.Failure.expected_consumed_bits
    base.Failure.consumed_bits;
  check_int "resilient exact" res.Failure.expected_consumed_bits
    res.Failure.consumed_bits

let test_churn_deterministic_under_seed () =
  let a = churn_run (Some Scheduler.default_config) in
  let b = churn_run (Some Scheduler.default_config) in
  check "identical reports" true (a = b)

let test_churn_restores_link_states () =
  let topo = Topology.random_mesh ~nodes:10 ~degree:3.5 ~seed:5L ~fiber_km:10.0 in
  let relay = Relay.create topo in
  Relay.advance relay ~seconds:30.0;
  let cfg =
    {
      Failure.default_churn_config with
      Failure.pairs = [ (0, 9) ];
      duration_s = 60.0;
    }
  in
  ignore (Failure.churn relay cfg);
  List.iter
    (fun (e : Topology.edge) -> check "edge restored up" true e.Topology.up)
    (Topology.edges topo)

let test_churn_rejects_bad_config () =
  let topo = Topology.chain ~n:1 ~kind:Topology.Trusted_relay ~fiber_km:10.0 in
  let relay = Relay.create topo in
  check "empty pairs rejected" true
    (try
       ignore (Failure.churn relay Failure.default_churn_config);
       false
     with Invalid_argument _ -> true)

(* -- Relay pool index -- *)

let test_find_pool_error_names_pair () =
  let topo = Topology.chain ~n:1 ~kind:Topology.Trusted_relay ~fiber_km:10.0 in
  let r = Relay.create topo in
  check "missing edge raises Invalid_argument" true
    (try
       ignore (Relay.pool_bits r 0 2);
       false
     with Invalid_argument msg ->
       (* The message names the offending pair, not a bare Not_found. *)
       String.length msg > 0)

let () =
  Alcotest.run "qkd_resilience"
    [
      ( "routing",
        [
          Alcotest.test_case "reroute around depleted edge" `Quick
            test_reroute_around_depleted_edge;
          Alcotest.test_case "reroute around down edge" `Quick
            test_reroute_around_down_edge;
          Alcotest.test_case "shortest route not flagged" `Quick
            test_shortest_route_not_flagged_rerouted;
        ] );
      ( "reserve-commit",
        [
          Alcotest.test_case "rollback restores pools" `Quick
            test_rollback_restores_pools;
          Alcotest.test_case "conservation over mixed requests" `Quick
            test_conservation_over_mixed_requests;
        ] );
      ( "watermarks",
        [
          Alcotest.test_case "high watermark caps pools" `Quick
            test_high_watermark_caps_pools;
          Alcotest.test_case "low watermark redistributes" `Quick
            test_low_watermark_redistributes_surplus;
          Alcotest.test_case "defaults inert" `Quick test_default_watermarks_inert;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "delivers after retry" `Quick
            test_scheduler_delivers_after_retry;
          Alcotest.test_case "queue full sheds" `Quick test_scheduler_queue_full_sheds;
          Alcotest.test_case "attempts exhausted" `Quick
            test_scheduler_attempts_exhausted;
          Alcotest.test_case "deadline exceeded" `Quick
            test_scheduler_deadline_exceeded;
          Alcotest.test_case "report ring bounded" `Quick
            test_scheduler_report_ring_bounded;
        ] );
      ( "churn",
        [
          Alcotest.test_case "resilient beats baseline" `Slow
            test_churn_resilient_beats_baseline;
          Alcotest.test_case "conserves pads" `Slow test_churn_conserves_pads;
          Alcotest.test_case "deterministic under seed" `Slow
            test_churn_deterministic_under_seed;
          Alcotest.test_case "restores link states" `Quick
            test_churn_restores_link_states;
          Alcotest.test_case "rejects bad config" `Quick test_churn_rejects_bad_config;
        ] );
      ( "pool-index",
        [
          Alcotest.test_case "missing edge error" `Quick test_find_pool_error_names_pair;
        ] );
    ]
