(* The campaign harness's three contracts.

   1. Checkpoint restart-equivalence (qcheck): save -> restore -> run
      is bit-identical to an uninterrupted run, across seeds, domain
      counts and checkpoint positions — the PR 2 reproducibility
      contract extended to full simulator state.
   2. No cross-run bleed: scenario specs are immutable values; running
      a campaign twice from one spec, or interleaving with another
      campaign, yields identical fingerprints, and Failure.churn on a
      shared default config stays reproducible.
   3. Drift does not mask attacks: a drifting clean link stays below
      the 4-sigma QBER alarm while the same drift plus
      intercept-resend still trips it. *)

module Scenario = Qkd_scenario.Scenario
module Campaign = Qkd_scenario.Campaign
module Checkpoint = Qkd_scenario.Checkpoint
module Link = Qkd_photonics.Link
module Topology = Qkd_net.Topology
module Relay = Qkd_net.Relay
module Failure = Qkd_net.Failure
module Alert = Qkd_obs.Alert
module Health = Qkd_obs.Health

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* A miniature spec exercising every moving part — mesh + churn,
   drift, intercept + DoS injections — small enough for property
   iteration. *)
let mini_spec ~seed ~domains =
  let t = Scenario.intercept_resend ~quick:true in
  let t = Scenario.with_seed t seed in
  let t = Scenario.with_duration t 600.0 in
  let t = Scenario.with_step t ~step_s:60.0 ~pulses_per_step:5_000 in
  let t = Scenario.with_link_mode t (Link.Batched { domains }) in
  Scenario.with_injections t
    [
      {
        Scenario.attack = Scenario.Intercept_resend { fraction = 1.0; ramp_s = 0.0 };
        from_s = 180.0;
        until_s = 600.0;
      };
      { attack = Scenario.Classical_dos; from_s = 360.0; until_s = 480.0 };
    ]

let run_uninterrupted spec =
  let c = Campaign.create spec in
  Campaign.run c;
  c

(* -- 1. checkpoint restart-equivalence -- *)

let checkpoint_equivalence =
  QCheck.Test.make ~count:12 ~name:"checkpoint restart-equivalence"
    QCheck.(
      triple (int_bound 1000) (int_range 1 3)
        (int_bound (Campaign.total_steps (mini_spec ~seed:0L ~domains:1) - 1)))
    (fun (seed, domains, position) ->
      let spec = mini_spec ~seed:(Int64.of_int (seed + 7)) ~domains in
      let reference = run_uninterrupted spec in
      let interrupted = Campaign.create spec in
      for _ = 1 to position do
        Campaign.step interrupted
      done;
      let resumed = Checkpoint.of_bytes (Checkpoint.to_bytes interrupted) in
      Campaign.run resumed;
      Campaign.fingerprint resumed = Campaign.fingerprint reference
      && Campaign.report resumed = Campaign.report reference)

(* Bit-identity across domain counts: the frame-sharded link is the
   only parallel component, and its PR 2 contract lifts to whole
   campaign reports (the spec itself differs, so fingerprints are
   compared via the domain-independent report). *)
let test_cross_domain_reports () =
  let r1 = Campaign.report (run_uninterrupted (mini_spec ~seed:3L ~domains:1)) in
  let r3 = Campaign.report (run_uninterrupted (mini_spec ~seed:3L ~domains:3)) in
  check "domains=1 and domains=3 produce identical campaign reports" true
    (r1 = r3)

let test_checkpoint_rejects_corruption () =
  let c = Campaign.create (mini_spec ~seed:5L ~domains:1) in
  Campaign.step c;
  let b = Checkpoint.to_bytes c in
  let flipped = Bytes.copy b in
  Bytes.set flipped (Bytes.length flipped - 1)
    (Char.chr (Char.code (Bytes.get flipped (Bytes.length flipped - 1)) lxor 1));
  let rejects name bad =
    match Checkpoint.of_bytes bad with
    | _ -> Alcotest.failf "%s accepted" name
    | exception Invalid_argument _ -> ()
  in
  rejects "flipped payload byte" flipped;
  rejects "truncated" (Bytes.sub b 0 (Bytes.length b / 2));
  rejects "bad magic" (Bytes.cat (Bytes.of_string "NOTACKPT") b);
  (* and the original still loads *)
  let restored = Checkpoint.of_bytes b in
  check_str "round-trip preserves the fingerprint"
    (Campaign.fingerprint c)
    (Campaign.fingerprint restored)

(* -- 2. cross-run bleed regression -- *)

let test_no_cross_run_bleed () =
  let spec = mini_spec ~seed:11L ~domains:1 in
  let f1 = Campaign.fingerprint (run_uninterrupted spec) in
  (* interleave an unrelated campaign that mutates its own topology
     and relay; the shared spec value must be unaffected *)
  let other = Scenario.clean (mini_spec ~seed:99L ~domains:1) in
  ignore (run_uninterrupted other);
  let f2 = Campaign.fingerprint (run_uninterrupted spec) in
  check_str "same spec, same fingerprint, despite interleaved runs" f1 f2

let test_builders_do_not_mutate () =
  let a = Scenario.base "a" in
  let b = Scenario.with_duration (Scenario.with_seed a 42L) 120.0 in
  check "builder returns a fresh value" true (a.Scenario.seed = 2003L);
  check "original duration untouched" true (a.Scenario.duration_s = 3_600.0);
  check "derived value carries the changes" true
    (b.Scenario.seed = 42L && b.Scenario.duration_s = 120.0)

let test_churn_config_sharing_safe () =
  (* Failure.churn on a config derived from the shared default must be
     reproducible run-to-run: nothing in the default record can have
     been mutated by the first run. *)
  let run () =
    let topo =
      Topology.random_mesh ~nodes:6 ~degree:3.0 ~seed:17L ~fiber_km:10.0
    in
    let relay = Relay.create ~low_watermark:512 ~high_watermark:50_000 topo in
    Relay.advance relay ~seconds:15.0;
    let cfg = Failure.default_churn_config in
    let cfg = Failure.with_pairs cfg [ (0, 5) ] in
    let cfg = Failure.with_duration cfg 30.0 in
    let cfg = Failure.with_outage_process cfg ~mtbf_s:20.0 ~mttr_s:8.0 in
    let cfg = Failure.with_request_load cfg ~bits:128 ~interval_s:1.0 in
    Failure.churn ~seed:23L relay cfg
  in
  let r1 = run () and r2 = run () in
  check "identical churn reports from a shared default config" true (r1 = r2);
  check "edge states restored (second run saw failures too)" true
    (r2.Failure.link_failures > 0)

(* -- 3. drift must not mask attacks -- *)

let drift_campaign ~attacked =
  let t = Scenario.base "drift-interaction" in
  let t = Scenario.with_duration t 1_200.0 in
  let t = Scenario.with_drift t Scenario.default_drift in
  let t =
    if attacked then
      Scenario.with_injections t
        [
          {
            Scenario.attack =
              Scenario.Intercept_resend { fraction = 1.0; ramp_s = 0.0 };
            from_s = 600.0;
            until_s = 1_200.0;
          };
        ]
    else t
  in
  let c = Campaign.create t in
  Campaign.run c;
  Alert.is_firing (Health.engine (Campaign.monitor c)) "qber_above_budget"

let test_drift_does_not_mask_attacks () =
  check "drifting clean link stays below the 4-sigma QBER alarm" false
    (drift_campaign ~attacked:false);
  check "same drift plus intercept-resend still trips it" true
    (drift_campaign ~attacked:true)

(* -- campaign SLO grading sanity -- *)

let test_detection_grading () =
  (* A hard intercept-resend on a cold link surfaces through either
     signal: rounds that still verify feed the QBER series (the
     4-sigma alarm), rounds that don't show up as a verification-
     failure spike (the failure-ratio alarm).  Since failed rounds no
     longer skew the QBER chain, grade the scenario against both and
     require the attack to be caught by at least one.  Steps carry
     more pulses than the property-iteration spec: the 4-sigma Wilson
     bound needs tens of sifted bits per window to clear the budget
     confidently. *)
  let spec =
    Scenario.with_slos
      (Scenario.with_step
         (mini_spec ~seed:2L ~domains:1)
         ~step_s:60.0 ~pulses_per_step:25_000)
      [
        { Scenario.alarm = "qber_above_budget"; within_s = 900.0 };
        { Scenario.alarm = "classical_channel_dos"; within_s = 900.0 };
      ]
  in
  let c = run_uninterrupted spec in
  let r = Campaign.report c in
  (match r.Campaign.detections with
  | [ dq; dd ] ->
      check_str "graded alarms" "qber_above_budget/classical_channel_dos"
        (dq.Campaign.alarm ^ "/" ^ dd.Campaign.alarm);
      check "injection time is the earliest injection" true
        (dq.Campaign.injected_at_s = 180.0);
      check "attack detected" true
        (dq.Campaign.detected_at_s <> None || dd.Campaign.detected_at_s <> None)
  | ds -> Alcotest.failf "expected 2 graded SLOs, got %d" (List.length ds));
  let clean = run_uninterrupted (Scenario.clean spec) in
  let rc = Campaign.report clean in
  check_int "clean twin fires zero alarms" 0 rc.Campaign.alerts_fired;
  check_int "clean twin grades no SLOs" 0 (List.length rc.Campaign.detections);
  check "memory stays bounded by the ring capacity" true
    (r.Campaign.max_series_len <= r.Campaign.series_capacity)

let () =
  Alcotest.run "qkd_scenario"
    [
      ( "checkpoint",
        [
          QCheck_alcotest.to_alcotest ~long:true checkpoint_equivalence;
          Alcotest.test_case "cross-domain report equality" `Slow
            test_cross_domain_reports;
          Alcotest.test_case "corrupted checkpoints rejected" `Quick
            test_checkpoint_rejects_corruption;
        ] );
      ( "immutability",
        [
          Alcotest.test_case "no cross-run bleed" `Slow test_no_cross_run_bleed;
          Alcotest.test_case "builders do not mutate" `Quick
            test_builders_do_not_mutate;
          Alcotest.test_case "churn config sharing safe" `Quick
            test_churn_config_sharing_safe;
        ] );
      ( "alarms",
        [
          Alcotest.test_case "drift does not mask attacks" `Slow
            test_drift_does_not_mask_attacks;
          Alcotest.test_case "detection grading" `Slow test_detection_grading;
        ] );
    ]
