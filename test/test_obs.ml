(* Tests for Qkd_obs: metric primitives, registry identity/validation,
   exporter formats (property-tested for determinism), span tracing,
   the engine's failure-path accounting, and the golden registry
   snapshot that pins the line-protocol format.

   Regenerate the golden file after an intentional metric change with:

     QKD_OBS_GOLDEN_WRITE=test/golden_round_metrics.expected \
       ./_build/default/test/test_obs.exe test golden *)

module Obs = Qkd_obs
module Counter = Qkd_obs.Counter
module Gauge = Qkd_obs.Gauge
module Histogram = Qkd_obs.Histogram
module Registry = Qkd_obs.Registry
module Trace = Qkd_obs.Trace
module Export = Qkd_obs.Export
module Control = Qkd_obs.Control
module Engine = Qkd_protocol.Engine

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)
let qcheck = QCheck_alcotest.to_alcotest

let counter_value r ?(labels = []) name =
  Counter.value (Registry.counter ~registry:r ~labels name)

let hist_count r ?(labels = []) name =
  Histogram.count (Registry.histogram ~registry:r ~labels name)

(* -- primitives -- *)

let test_counter_basics () =
  let c = Counter.make () in
  Counter.incr c;
  Counter.add c 41;
  check_int "value" 42 (Counter.value c);
  Alcotest.check_raises "negative add"
    (Invalid_argument "Counter.add: counters are monotone") (fun () ->
      Counter.add c (-1))

let test_gauge_basics () =
  let g = Gauge.make () in
  Gauge.set g 3.5;
  Gauge.add g 1.0;
  check "value" true (Gauge.value g = 4.5)

let test_histogram_placement () =
  let h = Histogram.make ~buckets:[| 1.0; 2.0; 4.0 |] in
  List.iter (Histogram.observe h) [ 0.5; 1.0; 1.5; 3.0; 100.0 ];
  check_int "count" 5 (Histogram.count h);
  check "sum" true (Histogram.sum h = 106.0);
  (* <=1 catches 0.5 and the boundary 1.0; +Inf catches 100 *)
  check "per-bucket" true
    (Histogram.bucket_counts h
    = [ (1.0, 2); (2.0, 1); (4.0, 1); (infinity, 1) ]);
  check "cumulative" true
    (Histogram.cumulative h = [ (1.0, 2); (2.0, 3); (4.0, 4); (infinity, 5) ])

let test_histogram_bad_buckets () =
  List.iter
    (fun buckets ->
      try
        ignore (Histogram.make ~buckets);
        Alcotest.fail "should raise"
      with Invalid_argument _ -> ())
    [ [||]; [| 2.0; 1.0 |]; [| 1.0; 1.0 |]; [| 0.0; infinity |] ]

(* -- registry -- *)

let test_registry_identity () =
  let r = Registry.create () in
  let a = Registry.counter ~registry:r "x_total" ~labels:[ ("k", "v"); ("a", "b") ] in
  (* label order must not matter *)
  let b = Registry.counter ~registry:r "x_total" ~labels:[ ("a", "b"); ("k", "v") ] in
  check "same handle" true (a == b);
  let c = Registry.counter ~registry:r "x_total" ~labels:[ ("a", "b") ] in
  check "different labels, different series" true (a != c);
  check_int "cardinality" 2 (Registry.cardinality r)

let test_registry_validation () =
  let r = Registry.create () in
  let raises f = try ignore (f ()); false with Invalid_argument _ -> true in
  check "bad name" true (raises (fun () -> Registry.counter ~registry:r "1bad"));
  check "empty name" true (raises (fun () -> Registry.counter ~registry:r ""));
  check "bad label key" true
    (raises (fun () -> Registry.counter ~registry:r "ok" ~labels:[ ("0k", "v") ]));
  check "reserved le" true
    (raises (fun () -> Registry.counter ~registry:r "ok" ~labels:[ ("le", "v") ]));
  check "duplicate label" true
    (raises (fun () ->
         Registry.counter ~registry:r "ok" ~labels:[ ("a", "1"); ("a", "2") ]));
  ignore (Registry.counter ~registry:r "typed_total");
  check "type clash" true
    (raises (fun () -> Registry.gauge ~registry:r "typed_total"));
  check "type clash across labels" true
    (raises (fun () ->
         Registry.histogram ~registry:r "typed_total" ~labels:[ ("a", "b") ]))

let test_registry_with_registry_restores () =
  let outer = Registry.default () in
  let r = Registry.create () in
  Registry.with_registry r (fun () ->
      check "swapped" true (Registry.default () == r));
  check "restored" true (Registry.default () == outer);
  (try
     Registry.with_registry r (fun () -> raise Exit)
   with Exit -> ());
  check "restored after raise" true (Registry.default () == outer)

(* -- control switch -- *)

let test_control_disables_mutation () =
  let r = Registry.create () in
  let c = Registry.counter ~registry:r "c_total" in
  let g = Registry.gauge ~registry:r "g" in
  let h = Registry.histogram ~registry:r "h_seconds" in
  Control.set_enabled false;
  Fun.protect ~finally:(fun () -> Control.set_enabled true) @@ fun () ->
  Counter.incr c;
  Counter.add c 7;
  Gauge.set g 9.0;
  Histogram.observe h 1.0;
  let v = Trace.with_span ~registry:r "off" (fun () -> 11) in
  check_int "span value" 11 v;
  check_int "counter untouched" 0 (Counter.value c);
  check "gauge untouched" true (Gauge.value g = 0.0);
  check_int "histogram untouched" 0 (Histogram.count h);
  check_int "no span series" 0 (Registry.cardinality r - 3)

(* -- tracing -- *)

let test_trace_with_span () =
  let r = Registry.create () in
  let v = Trace.with_span ~registry:r "work" (fun () -> 7) in
  check_int "result" 7 v;
  check_int "recorded" 1
    (hist_count r ~labels:[ ("span", "work") ] Trace.wall_metric);
  (try
     Trace.with_span ~registry:r "work" (fun () -> raise Exit)
   with Exit -> ());
  check_int "recorded on raise" 2
    (hist_count r ~labels:[ ("span", "work") ] Trace.wall_metric)

let test_trace_record_sim () =
  let r = Registry.create () in
  Trace.record_sim ~registry:r "round" 2.0;
  Trace.record_sim ~registry:r "round" 3.0;
  let h =
    Registry.histogram ~registry:r ~labels:[ ("span", "round") ] Trace.sim_metric
  in
  check_int "count" 2 (Histogram.count h);
  check "sum" true (Histogram.sum h = 5.0)

(* -- exporters -- *)

let test_snapshot_format () =
  let r = Registry.create () in
  Counter.add (Registry.counter ~registry:r "a_total") 3;
  Gauge.set (Registry.gauge ~registry:r "g_bits" ~labels:[ ("pool", "a") ]) 7.5;
  let h = Registry.histogram ~registry:r "h_seconds" ~buckets:[| 1.0; 2.0 |] in
  Histogram.observe h 0.5;
  Histogram.observe h 3.0;
  check_string "line protocol"
    "a_total 3\n\
     g_bits{pool=\"a\"} 7.5\n\
     h_seconds_bucket{le=\"1\"} 1\n\
     h_seconds_bucket{le=\"2\"} 1\n\
     h_seconds_bucket{le=\"+Inf\"} 2\n\
     h_seconds_sum 3.5\n\
     h_seconds_count 2\n"
    (Export.snapshot ~registry:r ())

let test_snapshot_label_escaping () =
  let r = Registry.create () in
  Counter.incr
    (Registry.counter ~registry:r "esc_total"
       ~labels:[ ("l", "a\"b\\c\nd") ]);
  check_string "escaped" "esc_total{l=\"a\\\"b\\\\c\\nd\"} 1\n"
    (Export.snapshot ~registry:r ())

let test_dump_mentions_every_series () =
  let r = Registry.create () in
  Counter.incr (Registry.counter ~registry:r "one_total");
  Gauge.set (Registry.gauge ~registry:r "two_bits") 5.0;
  ignore (Registry.histogram ~registry:r "three_seconds");
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  Export.pp_dump ~registry:r () ppf;
  Format.pp_print_flush ppf ();
  let dump = Buffer.contents buf in
  List.iter
    (fun name ->
      check (name ^ " in dump") true
        (let len = String.length dump and n = String.length name in
         let rec scan i =
           i + n <= len && (String.sub dump i n = name || scan (i + 1))
         in
         scan 0))
    [ "one_total"; "two_bits"; "three_seconds" ]

(* -- qcheck properties -- *)

let prop_counter_adds_commute =
  QCheck.Test.make ~name:"counter adds commute" ~count:200
    QCheck.(list small_nat)
    (fun ns ->
      let c1 = Counter.make () and c2 = Counter.make () in
      List.iter (Counter.add c1) ns;
      List.iter (Counter.add c2) (List.rev ns);
      Counter.value c1 = Counter.value c2
      && Counter.value c1 = List.fold_left ( + ) 0 ns)

let prop_histogram_buckets_sum_to_count =
  QCheck.Test.make ~name:"histogram buckets sum to count" ~count:200
    QCheck.(list float)
    (fun vs ->
      let h = Histogram.make ~buckets:[| -1.0; 0.0; 1.0; 100.0 |] in
      List.iter (Histogram.observe h) vs;
      let per_bucket = List.fold_left (fun a (_, c) -> a + c) 0
          (Histogram.bucket_counts h)
      in
      per_bucket = List.length vs
      && Histogram.count h = List.length vs
      && snd (List.nth (Histogram.cumulative h)
                (List.length (Histogram.cumulative h) - 1))
         = List.length vs)

(* A registry spec: each (kind, name#, label#, value) creates/updates
   one series.  Kind picks the metric type so names never clash. *)
let registry_of_spec spec =
  let r = Registry.create () in
  List.iter
    (fun (kind, name_i, label_i, v) ->
      let labels =
        if label_i mod 3 = 0 then []
        else [ ("l", string_of_int (label_i mod 3)) ]
      in
      match kind mod 3 with
      | 0 ->
          Counter.add
            (Registry.counter ~registry:r ~labels
               (Printf.sprintf "c%d_total" (name_i mod 4)))
            v
      | 1 ->
          Gauge.set
            (Registry.gauge ~registry:r ~labels
               (Printf.sprintf "g%d_bits" (name_i mod 4)))
            (float_of_int v)
      | _ ->
          Histogram.observe
            (Registry.histogram ~registry:r ~labels
               ~buckets:[| 1.0; 10.0; 100.0 |]
               (Printf.sprintf "h%d_seconds" (name_i mod 4)))
            (float_of_int v))
    spec;
  r

let spec_gen =
  QCheck.(list (quad small_nat small_nat small_nat small_nat))

let prop_snapshot_deterministic =
  QCheck.Test.make ~name:"snapshot deterministic" ~count:100 spec_gen
    (fun spec ->
      let r = registry_of_spec spec in
      String.equal (Export.snapshot ~registry:r ()) (Export.snapshot ~registry:r ()))

let prop_snapshot_sorted =
  QCheck.Test.make ~name:"snapshot sorted by (name, labels)" ~count:100 spec_gen
    (fun spec ->
      let r = registry_of_spec spec in
      let keys =
        List.map
          (fun ((k : Registry.key), _) -> (k.Registry.name, k.Registry.labels))
          (Registry.to_list r)
      in
      keys = List.sort_uniq compare keys)

let prop_counter_registry_order_independent =
  QCheck.Test.make ~name:"registry counter order independent" ~count:100
    QCheck.(list (pair small_nat small_nat))
    (fun ops ->
      let build ops =
        let r = Registry.create () in
        List.iter
          (fun (name_i, v) ->
            Counter.add
              (Registry.counter ~registry:r
                 (Printf.sprintf "c%d_total" (name_i mod 5)))
              v)
          ops;
        Export.snapshot ~registry:r ()
      in
      String.equal (build ops) (build (List.rev ops)))

(* -- engine failure paths -- *)

let run_isolated ?(seed = 2003L) ?(tamper = false) ?config ~pulses () =
  let config = Option.value config ~default:Engine.default_config in
  let r = Registry.create () in
  let result =
    Registry.with_registry r (fun () ->
        let engine = Engine.create ~seed config in
        Engine.run_round ~tamper engine ~pulses)
  in
  (r, result)

let test_engine_tamper_counted () =
  let r, result = run_isolated ~tamper:true ~pulses:100_000 () in
  (match result with
  | Error Engine.Auth_tampered -> ()
  | Ok _ -> Alcotest.fail "tampered round accepted"
  | Error f -> Alcotest.failf "unexpected failure: %a" Engine.pp_failure f);
  check_int "rounds total" 1 (counter_value r "engine_rounds_total");
  check_int "failed{auth_tampered}" 1
    (counter_value r "engine_rounds_failed"
       ~labels:[ ("reason", "auth_tampered") ]);
  check_int "failed{auth_exhausted} untouched" 0
    (counter_value r "engine_rounds_failed"
       ~labels:[ ("reason", "auth_exhausted") ])

let test_engine_exhaustion_counted () =
  let config =
    { Engine.default_config with Engine.auth_prepositioned_bits = 32 }
  in
  let r, result = run_isolated ~config ~pulses:100_000 () in
  (match result with
  | Error Engine.Auth_exhausted -> ()
  | Ok _ -> Alcotest.fail "round succeeded on an empty auth pool"
  | Error f -> Alcotest.failf "unexpected failure: %a" Engine.pp_failure f);
  check_int "failed{auth_exhausted}" 1
    (counter_value r "engine_rounds_failed"
       ~labels:[ ("reason", "auth_exhausted") ])

let test_engine_failure_does_not_leak () =
  let r, result = run_isolated ~tamper:true ~pulses:100_000 () in
  check "round failed" true (Result.is_error result);
  (* quality/throughput series are success-only *)
  check_int "qber histogram empty" 0 (hist_count r "protocol_qber_ratio");
  check_int "sifted bps empty" 0 (hist_count r "protocol_sifted_bps");
  check_int "distilled bps empty" 0 (hist_count r "protocol_distilled_bps");
  check_int "distilled counter zero" 0
    (counter_value r "protocol_distilled_bits_total");
  check_int "sim round span empty" 0
    (hist_count r ~labels:[ ("span", "engine_round") ] Trace.sim_metric);
  (* ...while the layers below still report what physically happened *)
  check "photonics still counted" true
    (counter_value r "photonics_pulses_total" = 100_000)

let test_engine_success_observes () =
  let r, result = run_isolated ~pulses:200_000 () in
  (match result with
  | Ok _ -> ()
  | Error f -> Alcotest.failf "round failed: %a" Engine.pp_failure f);
  check_int "qber histogram" 1 (hist_count r "protocol_qber_ratio");
  check_int "distilled bps" 1 (hist_count r "protocol_distilled_bps");
  check "sifted counted" true (counter_value r "protocol_sifted_bits_total" > 0);
  check "cascade ran" true (counter_value r "cascade_reconciliations_total" = 1);
  check "pa ran" true (counter_value r "pa_amplifications_total" = 1);
  check_int "no failures" 0
    (counter_value r "engine_rounds_failed"
       ~labels:[ ("reason", "auth_tampered") ])

(* -- golden snapshot -- *)

let golden_file = "golden_round_metrics.expected"

(* Wall-clock spans are the one nondeterministic series; everything
   else in a seeded round is reproducible and pinned. *)
let filtered_snapshot r =
  Export.snapshot ~registry:r ()
  |> String.split_on_char '\n'
  |> List.filter (fun l ->
         not (String.length l >= String.length Trace.wall_metric
             && String.sub l 0 (String.length Trace.wall_metric)
                = Trace.wall_metric))
  |> String.concat "\n"

let test_golden_snapshot () =
  let r, result = run_isolated ~seed:2003L ~pulses:500_000 () in
  (match result with
  | Ok _ -> ()
  | Error f -> Alcotest.failf "golden round failed: %a" Engine.pp_failure f);
  let actual = filtered_snapshot r in
  match Sys.getenv_opt "QKD_OBS_GOLDEN_WRITE" with
  | Some path ->
      let oc = open_out path in
      output_string oc actual;
      close_out oc
  | None ->
      let ic = open_in golden_file in
      let expected = really_input_string ic (in_channel_length ic) in
      close_in ic;
      if not (String.equal expected actual) then
        Alcotest.failf
          "registry snapshot drifted from %s (metric renamed/dropped?).\n\
           -- expected --\n%s\n-- actual --\n%s"
          golden_file expected actual

let () =
  Alcotest.run "qkd_obs"
    [
      ( "primitives",
        [
          Alcotest.test_case "counter" `Quick test_counter_basics;
          Alcotest.test_case "gauge" `Quick test_gauge_basics;
          Alcotest.test_case "histogram placement" `Quick test_histogram_placement;
          Alcotest.test_case "bad buckets" `Quick test_histogram_bad_buckets;
          qcheck prop_counter_adds_commute;
          qcheck prop_histogram_buckets_sum_to_count;
        ] );
      ( "registry",
        [
          Alcotest.test_case "identity" `Quick test_registry_identity;
          Alcotest.test_case "validation" `Quick test_registry_validation;
          Alcotest.test_case "with_registry restores" `Quick
            test_registry_with_registry_restores;
          Alcotest.test_case "control switch" `Quick test_control_disables_mutation;
          qcheck prop_counter_registry_order_independent;
        ] );
      ( "tracing",
        [
          Alcotest.test_case "with_span" `Quick test_trace_with_span;
          Alcotest.test_case "record_sim" `Quick test_trace_record_sim;
        ] );
      ( "export",
        [
          Alcotest.test_case "snapshot format" `Quick test_snapshot_format;
          Alcotest.test_case "label escaping" `Quick test_snapshot_label_escaping;
          Alcotest.test_case "dump covers series" `Quick
            test_dump_mentions_every_series;
          qcheck prop_snapshot_deterministic;
          qcheck prop_snapshot_sorted;
        ] );
      ( "engine failure paths",
        [
          Alcotest.test_case "tamper counted" `Slow test_engine_tamper_counted;
          Alcotest.test_case "exhaustion counted" `Quick
            test_engine_exhaustion_counted;
          Alcotest.test_case "failure does not leak" `Slow
            test_engine_failure_does_not_leak;
          Alcotest.test_case "success observes" `Slow test_engine_success_observes;
        ] );
      ( "golden",
        [ Alcotest.test_case "golden" `Slow test_golden_snapshot ] );
    ]
