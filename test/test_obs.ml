(* Tests for Qkd_obs: metric primitives, registry identity/validation,
   exporter formats (property-tested for determinism), span tracing,
   the engine's failure-path accounting, and the golden registry
   snapshot that pins the line-protocol format.

   Regenerate the golden file after an intentional metric change with:

     QKD_OBS_GOLDEN_WRITE=test/golden_round_metrics.expected \
       ./_build/default/test/test_obs.exe test golden *)

module Obs = Qkd_obs
module Series = Qkd_obs.Series
module Alert = Qkd_obs.Alert
module Counter = Qkd_obs.Counter
module Gauge = Qkd_obs.Gauge
module Histogram = Qkd_obs.Histogram
module Registry = Qkd_obs.Registry
module Trace = Qkd_obs.Trace
module Export = Qkd_obs.Export
module Control = Qkd_obs.Control
module Engine = Qkd_protocol.Engine

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)
let qcheck = QCheck_alcotest.to_alcotest

let contains hay needle =
  let len = String.length hay and n = String.length needle in
  let rec scan i = i + n <= len && (String.sub hay i n = needle || scan (i + 1)) in
  scan 0

let counter_value r ?(labels = []) name =
  Counter.value (Registry.counter ~registry:r ~labels name)

let hist_count r ?(labels = []) name =
  Histogram.count (Registry.histogram ~registry:r ~labels name)

(* -- primitives -- *)

let test_counter_basics () =
  let c = Counter.make () in
  Counter.incr c;
  Counter.add c 41;
  check_int "value" 42 (Counter.value c);
  Alcotest.check_raises "negative add"
    (Invalid_argument "Counter.add: counters are monotone") (fun () ->
      Counter.add c (-1))

let test_gauge_basics () =
  let g = Gauge.make () in
  Gauge.set g 3.5;
  Gauge.add g 1.0;
  check "value" true (Gauge.value g = 4.5)

let test_histogram_placement () =
  let h = Histogram.make ~buckets:[| 1.0; 2.0; 4.0 |] in
  List.iter (Histogram.observe h) [ 0.5; 1.0; 1.5; 3.0; 100.0 ];
  check_int "count" 5 (Histogram.count h);
  check "sum" true (Histogram.sum h = 106.0);
  (* <=1 catches 0.5 and the boundary 1.0; +Inf catches 100 *)
  check "per-bucket" true
    (Histogram.bucket_counts h
    = [ (1.0, 2); (2.0, 1); (4.0, 1); (infinity, 1) ]);
  check "cumulative" true
    (Histogram.cumulative h = [ (1.0, 2); (2.0, 3); (4.0, 4); (infinity, 5) ])

let test_histogram_bad_buckets () =
  List.iter
    (fun buckets ->
      try
        ignore (Histogram.make ~buckets);
        Alcotest.fail "should raise"
      with Invalid_argument _ -> ())
    [ [||]; [| 2.0; 1.0 |]; [| 1.0; 1.0 |]; [| 0.0; infinity |] ]

(* -- registry -- *)

let test_registry_identity () =
  let r = Registry.create () in
  let a = Registry.counter ~registry:r "x_total" ~labels:[ ("k", "v"); ("a", "b") ] in
  (* label order must not matter *)
  let b = Registry.counter ~registry:r "x_total" ~labels:[ ("a", "b"); ("k", "v") ] in
  check "same handle" true (a == b);
  let c = Registry.counter ~registry:r "x_total" ~labels:[ ("a", "b") ] in
  check "different labels, different series" true (a != c);
  check_int "cardinality" 2 (Registry.cardinality r)

let test_registry_validation () =
  let r = Registry.create () in
  let raises f = try ignore (f ()); false with Invalid_argument _ -> true in
  check "bad name" true (raises (fun () -> Registry.counter ~registry:r "1bad"));
  check "empty name" true (raises (fun () -> Registry.counter ~registry:r ""));
  check "bad label key" true
    (raises (fun () -> Registry.counter ~registry:r "ok" ~labels:[ ("0k", "v") ]));
  check "reserved le" true
    (raises (fun () -> Registry.counter ~registry:r "ok" ~labels:[ ("le", "v") ]));
  check "duplicate label" true
    (raises (fun () ->
         Registry.counter ~registry:r "ok" ~labels:[ ("a", "1"); ("a", "2") ]));
  ignore (Registry.counter ~registry:r "typed_total");
  check "type clash" true
    (raises (fun () -> Registry.gauge ~registry:r "typed_total"));
  check "type clash across labels" true
    (raises (fun () ->
         Registry.histogram ~registry:r "typed_total" ~labels:[ ("a", "b") ]))

let test_registry_with_registry_restores () =
  let outer = Registry.default () in
  let r = Registry.create () in
  Registry.with_registry r (fun () ->
      check "swapped" true (Registry.default () == r));
  check "restored" true (Registry.default () == outer);
  (try
     Registry.with_registry r (fun () -> raise Exit)
   with Exit -> ());
  check "restored after raise" true (Registry.default () == outer)

(* -- control switch -- *)

let test_control_disables_mutation () =
  let r = Registry.create () in
  let c = Registry.counter ~registry:r "c_total" in
  let g = Registry.gauge ~registry:r "g" in
  let h = Registry.histogram ~registry:r "h_seconds" in
  Control.set_enabled false;
  Fun.protect ~finally:(fun () -> Control.set_enabled true) @@ fun () ->
  Counter.incr c;
  Counter.add c 7;
  Gauge.set g 9.0;
  Histogram.observe h 1.0;
  let v = Trace.with_span ~registry:r "off" (fun () -> 11) in
  check_int "span value" 11 v;
  check_int "counter untouched" 0 (Counter.value c);
  check "gauge untouched" true (Gauge.value g = 0.0);
  check_int "histogram untouched" 0 (Histogram.count h);
  check_int "no span series" 0 (Registry.cardinality r - 3)

(* -- tracing -- *)

let test_trace_with_span () =
  let r = Registry.create () in
  let v = Trace.with_span ~registry:r "work" (fun () -> 7) in
  check_int "result" 7 v;
  check_int "recorded" 1
    (hist_count r ~labels:[ ("span", "work") ] Trace.wall_metric);
  (try
     Trace.with_span ~registry:r "work" (fun () -> raise Exit)
   with Exit -> ());
  check_int "recorded on raise" 2
    (hist_count r ~labels:[ ("span", "work") ] Trace.wall_metric)

let test_trace_record_sim () =
  let r = Registry.create () in
  Trace.record_sim ~registry:r "round" 2.0;
  Trace.record_sim ~registry:r "round" 3.0;
  let h =
    Registry.histogram ~registry:r ~labels:[ ("span", "round") ] Trace.sim_metric
  in
  check_int "count" 2 (Histogram.count h);
  check "sum" true (Histogram.sum h = 5.0)

(* -- exporters -- *)

let test_snapshot_format () =
  let r = Registry.create () in
  Counter.add (Registry.counter ~registry:r "a_total") 3;
  Gauge.set (Registry.gauge ~registry:r "g_bits" ~labels:[ ("pool", "a") ]) 7.5;
  let h = Registry.histogram ~registry:r "h_seconds" ~buckets:[| 1.0; 2.0 |] in
  Histogram.observe h 0.5;
  Histogram.observe h 3.0;
  check_string "line protocol"
    "a_total 3\n\
     g_bits{pool=\"a\"} 7.5\n\
     h_seconds_bucket{le=\"1\"} 1\n\
     h_seconds_bucket{le=\"2\"} 1\n\
     h_seconds_bucket{le=\"+Inf\"} 2\n\
     h_seconds_sum 3.5\n\
     h_seconds_count 2\n"
    (Export.snapshot ~registry:r ())

let test_snapshot_label_escaping () =
  let r = Registry.create () in
  Counter.incr
    (Registry.counter ~registry:r "esc_total"
       ~labels:[ ("l", "a\"b\\c\nd") ]);
  check_string "escaped" "esc_total{l=\"a\\\"b\\\\c\\nd\"} 1\n"
    (Export.snapshot ~registry:r ())

let test_dump_mentions_every_series () =
  let r = Registry.create () in
  Counter.incr (Registry.counter ~registry:r "one_total");
  Gauge.set (Registry.gauge ~registry:r "two_bits") 5.0;
  ignore (Registry.histogram ~registry:r "three_seconds");
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  Export.pp_dump ~registry:r () ppf;
  Format.pp_print_flush ppf ();
  let dump = Buffer.contents buf in
  List.iter
    (fun name ->
      check (name ^ " in dump") true
        (let len = String.length dump and n = String.length name in
         let rec scan i =
           i + n <= len && (String.sub dump i n = name || scan (i + 1))
         in
         scan 0))
    [ "one_total"; "two_bits"; "three_seconds" ]

(* -- qcheck properties -- *)

let prop_counter_adds_commute =
  QCheck.Test.make ~name:"counter adds commute" ~count:200
    QCheck.(list small_nat)
    (fun ns ->
      let c1 = Counter.make () and c2 = Counter.make () in
      List.iter (Counter.add c1) ns;
      List.iter (Counter.add c2) (List.rev ns);
      Counter.value c1 = Counter.value c2
      && Counter.value c1 = List.fold_left ( + ) 0 ns)

let prop_histogram_buckets_sum_to_count =
  QCheck.Test.make ~name:"histogram buckets sum to count" ~count:200
    QCheck.(list float)
    (fun vs ->
      let h = Histogram.make ~buckets:[| -1.0; 0.0; 1.0; 100.0 |] in
      List.iter (Histogram.observe h) vs;
      let per_bucket = List.fold_left (fun a (_, c) -> a + c) 0
          (Histogram.bucket_counts h)
      in
      per_bucket = List.length vs
      && Histogram.count h = List.length vs
      && snd (List.nth (Histogram.cumulative h)
                (List.length (Histogram.cumulative h) - 1))
         = List.length vs)

(* A registry spec: each (kind, name#, label#, value) creates/updates
   one series.  Kind picks the metric type so names never clash. *)
let registry_of_spec spec =
  let r = Registry.create () in
  List.iter
    (fun (kind, name_i, label_i, v) ->
      let labels =
        if label_i mod 3 = 0 then []
        else [ ("l", string_of_int (label_i mod 3)) ]
      in
      match kind mod 3 with
      | 0 ->
          Counter.add
            (Registry.counter ~registry:r ~labels
               (Printf.sprintf "c%d_total" (name_i mod 4)))
            v
      | 1 ->
          Gauge.set
            (Registry.gauge ~registry:r ~labels
               (Printf.sprintf "g%d_bits" (name_i mod 4)))
            (float_of_int v)
      | _ ->
          Histogram.observe
            (Registry.histogram ~registry:r ~labels
               ~buckets:[| 1.0; 10.0; 100.0 |]
               (Printf.sprintf "h%d_seconds" (name_i mod 4)))
            (float_of_int v))
    spec;
  r

let spec_gen =
  QCheck.(list (quad small_nat small_nat small_nat small_nat))

let prop_snapshot_deterministic =
  QCheck.Test.make ~name:"snapshot deterministic" ~count:100 spec_gen
    (fun spec ->
      let r = registry_of_spec spec in
      String.equal (Export.snapshot ~registry:r ()) (Export.snapshot ~registry:r ()))

let prop_snapshot_sorted =
  QCheck.Test.make ~name:"snapshot sorted by (name, labels)" ~count:100 spec_gen
    (fun spec ->
      let r = registry_of_spec spec in
      let keys =
        List.map
          (fun ((k : Registry.key), _) -> (k.Registry.name, k.Registry.labels))
          (Registry.to_list r)
      in
      keys = List.sort_uniq compare keys)

let prop_counter_registry_order_independent =
  QCheck.Test.make ~name:"registry counter order independent" ~count:100
    QCheck.(list (pair small_nat small_nat))
    (fun ops ->
      let build ops =
        let r = Registry.create () in
        List.iter
          (fun (name_i, v) ->
            Counter.add
              (Registry.counter ~registry:r
                 (Printf.sprintf "c%d_total" (name_i mod 5)))
              v)
          ops;
        Export.snapshot ~registry:r ()
      in
      String.equal (build ops) (build (List.rev ops)))

(* -- domain safety: counters and gauges are Atomic-backed, so
   concurrent mutation from several domains must never lose an
   update -- *)

let prop_metrics_domain_safe =
  QCheck.Test.make ~name:"counter/gauge safe across domains" ~count:10
    QCheck.(pair (int_range 1 4) (int_range 0 2_000))
    (fun (doms, n) ->
      let c = Counter.make () in
      let g = Gauge.make () in
      let ds =
        List.init doms (fun _ ->
            Domain.spawn (fun () ->
                for _ = 1 to n do
                  Counter.incr c;
                  Gauge.add g 1.0
                done))
      in
      List.iter Domain.join ds;
      Counter.value c = doms * n && Gauge.value g = float_of_int (doms * n))

(* -- windowed series -- *)

let test_series_ring () =
  let s = Series.create ~capacity:4 "s" in
  for i = 1 to 6 do
    Series.push s ~t:(float_of_int i) (float_of_int (10 * i))
  done;
  check_int "length" 4 (Series.length s);
  check "oldest evicted" true (Series.nth s 0 = (3.0, 30.0));
  check "last" true (Series.last s = Some (6.0, 60.0));
  check_int "window" 3 (Array.length (Series.window s ~seconds:2.0));
  check "delta" true (Series.delta s ~seconds:10.0 = 30.0);
  check "rate" true (Series.rate s ~seconds:10.0 = 10.0);
  check "mean" true (Series.windowed_mean s ~seconds:10.0 = 45.0);
  check "ewma alpha=1 is last" true (Series.ewma s ~alpha:1.0 = 60.0)

let test_series_ratio () =
  let num = Series.create "n" and den = Series.create "d" in
  Series.push num ~t:0.0 0.0;
  Series.push den ~t:0.0 0.0;
  check "no traffic" true (Series.ratio ~num ~den ~seconds:10.0 = None);
  Series.push num ~t:1.0 25.0;
  Series.push den ~t:1.0 100.0;
  check "ratio" true (Series.ratio ~num ~den ~seconds:10.0 = Some 0.25);
  match Series.wilson_ratio_ci ~num ~den ~seconds:10.0 ~z:2.0 with
  | Some (lo, hi) -> check "ci brackets ratio" true (0.0 < lo && lo < 0.25 && 0.25 < hi)
  | None -> Alcotest.fail "wilson undecidable with 100 trials"

let test_labelled_name () =
  check_string "sorted" "m{a=\"1\",b=\"2\"}"
    (Series.labelled_name "m" [ ("b", "2"); ("a", "1") ]);
  check_string "no labels" "m" (Series.labelled_name "m" [])

let test_series_set_tick () =
  let set = Series.create_set ~capacity:8 () in
  let v = ref 0.0 in
  let s = Series.watch set "x" (fun () -> !v) in
  let s2 = Series.watch set "x" (fun () -> 99.0) in
  check "first registration wins" true (s == s2);
  v := 1.0;
  Series.tick set ~now:0.0;
  v := 2.0;
  Series.tick set ~now:1.0;
  check "sampled at ticks" true
    (Series.samples s = [| (0.0, 1.0); (1.0, 2.0) |]);
  check "find" true
    (match Series.find set "x" with Some s' -> s' == s | None -> false);
  check_int "one series" 1 (List.length (Series.all set))

let test_series_control_gated () =
  let s = Series.create "c" in
  Control.set_enabled false;
  Fun.protect ~finally:(fun () -> Control.set_enabled true) (fun () ->
      Series.push s ~t:0.0 1.0);
  check_int "no sample while disabled" 0 (Series.length s)

let prop_series_eviction =
  QCheck.Test.make ~name:"series evicts oldest first" ~count:200
    QCheck.(pair (int_range 1 16) (int_range 0 64))
    (fun (cap, n) ->
      let s = Series.create ~capacity:cap "p" in
      for i = 0 to n - 1 do
        Series.push s ~t:(float_of_int i) (float_of_int i)
      done;
      Series.length s = min n cap
      && (n = 0
         || fst (Series.nth s 0) = float_of_int (max 0 (n - cap))
            && Series.last s
               = Some (float_of_int (n - 1), float_of_int (n - 1))))

(* -- alert engine -- *)

let test_alert_threshold_lifecycle () =
  let set = Series.create_set () in
  let v = ref 0.0 in
  ignore (Series.watch set "g" (fun () -> !v));
  let e = Alert.create set in
  Alert.add_rule e
    {
      Alert.name = "hot";
      severity = Alert.Warning;
      message = "too hot";
      for_s = 1.5;
      kind =
        Alert.Threshold
          { series = "g"; window_s = 1.0; condition = Alert.Above 10.0 };
    };
  let step now value =
    v := value;
    Series.tick set ~now;
    Alert.evaluate e ~now
  in
  step 0.0 5.0;
  check "ok" true (Alert.state e "hot" = Some Alert.Ok);
  step 1.0 20.0;
  check "pending on first breach" true
    (match Alert.state e "hot" with Some (Alert.Pending _) -> true | _ -> false);
  check "not firing before for_s" false (Alert.is_firing e "hot");
  step 2.0 20.0;
  step 3.0 20.0;
  check "firing after hold" true (Alert.is_firing e "hot");
  check_int "fired once" 1 (Alert.fired_count e);
  check "listed as firing" true
    (List.exists (fun (r : Alert.rule) -> r.Alert.name = "hot") (Alert.firing e));
  (* the 1 s window at t=4 still averages the t=3 breach sample, so
     recovery needs a second healthy tick *)
  step 4.0 5.0;
  step 5.0 5.0;
  check "resolved" true (Alert.state e "hot" = Some Alert.Ok);
  match Alert.log e with
  | [ f; r ] ->
      check "fired then resolved" true
        (f.Alert.transition = Alert.Fired
        && r.Alert.transition = Alert.Resolved
        && f.Alert.rule = "hot")
  | l -> Alcotest.failf "expected 2 log events, got %d" (List.length l)

let test_alert_duplicate_name_rejected () =
  let set = Series.create_set () in
  let e = Alert.create set in
  let rule =
    {
      Alert.name = "dup";
      severity = Alert.Info;
      message = "";
      for_s = 0.0;
      kind =
        Alert.Threshold
          { series = "g"; window_s = 1.0; condition = Alert.Above 0.0 };
    }
  in
  Alert.add_rule e rule;
  check "duplicate raises" true
    (try
       Alert.add_rule e rule;
       false
     with Invalid_argument _ -> true)

let test_alert_undecidable_keeps_state () =
  let set = Series.create_set () in
  let e = Alert.create set in
  Alert.add_rule e
    {
      Alert.name = "r";
      severity = Alert.Critical;
      message = "";
      for_s = 0.0;
      kind =
        Alert.Ratio
          {
            num = "n";
            den = "d";
            window_s = 10.0;
            condition = Alert.Above 0.5;
            min_den = 4.0;
            z = None;
          };
    };
  (* missing series: undecidable, state untouched *)
  Alert.evaluate e ~now:0.0;
  check "ok with missing series" true (Alert.state e "r" = Some Alert.Ok);
  check "no observation" true (Alert.last_value e "r" = None);
  let nv = ref 0.0 and dv = ref 0.0 in
  ignore (Series.watch set "n" (fun () -> !nv));
  ignore (Series.watch set "d" (fun () -> !dv));
  Series.tick set ~now:1.0;
  nv := 2.0;
  dv := 2.0;
  Series.tick set ~now:2.0;
  Alert.evaluate e ~now:2.0;
  (* Δden = 2 below min_den 4: still undecidable *)
  check "below min_den keeps ok" true
    (Alert.state e "r" = Some Alert.Ok && Alert.last_value e "r" = None);
  nv := 6.0;
  dv := 8.0;
  Series.tick set ~now:3.0;
  Alert.evaluate e ~now:3.0;
  (* Δnum/Δden = 6/8 over the limit, for_s 0 fires at once *)
  check "fires once decidable" true (Alert.is_firing e "r");
  check "observed value" true (Alert.last_value e "r" = Some 0.75)

let test_alert_burn_rate_slo () =
  let set = Series.create_set () in
  let good = ref 0.0 and total = ref 0.0 in
  ignore (Series.watch set "good" (fun () -> !good));
  ignore (Series.watch set "total" (fun () -> !total));
  let e = Alert.create set in
  Alert.add_rule e
    {
      Alert.name = "slo";
      severity = Alert.Warning;
      message = "";
      for_s = 0.0;
      kind =
        Alert.Burn_rate
          {
            good = "good";
            total = "total";
            objective = 0.9;
            window_s = 10.0;
            max_burn = 1.0;
          };
    };
  Series.tick set ~now:0.0;
  Alert.evaluate e ~now:0.0;
  check "no attainment before traffic" true (Alert.slo_attainment e "slo" = None);
  good := 8.0;
  total := 10.0;
  Series.tick set ~now:1.0;
  Alert.evaluate e ~now:1.0;
  (* attainment 0.8 burns at 2x budget *)
  check "burning fires" true (Alert.is_firing e "slo");
  check "attainment 0.8" true (Alert.slo_attainment e "slo" = Some 0.8);
  check "attainment is None for other kinds" true
    (Alert.slo_attainment e "nope" = None)

(* -- causal spans -- *)

let test_causal_spans () =
  let tr = Trace.tracer_create () in
  let root = Trace.span_begin ~tracer:tr ~at:1.0 "root" in
  check "root id live" true (root <> Trace.null_id);
  let child = Trace.span_begin ~tracer:tr ~parent:root ~at:2.0 "child" in
  Trace.span_note ~tracer:tr child "k" "v";
  (* end time before start clamps to the start *)
  Trace.span_end ~tracer:tr child ~at:1.5;
  Trace.span_end ~tracer:tr root ~at:5.0;
  (* the null id is accepted and ignored everywhere *)
  Trace.span_note ~tracer:tr Trace.null_id "a" "b";
  Trace.span_end ~tracer:tr Trace.null_id;
  let spans = Trace.spans ~tracer:tr () in
  check_int "two spans" 2 (List.length spans);
  let c = List.find (fun s -> s.Trace.name = "child") spans in
  check "parent link" true (c.Trace.parent = Some root);
  check "finished" true c.Trace.finished;
  check "clamped duration" true (c.Trace.end_s = c.Trace.start_s);
  check "note kept" true (List.assoc_opt "k" c.Trace.notes = Some "v");
  let json = Trace.export_chrome ~tracer:tr () in
  check "chrome export has both spans" true
    (contains json "root" && contains json "child");
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  Trace.pp_tree ~tracer:tr () ppf;
  Format.pp_print_flush ppf ();
  let tree = Buffer.contents buf in
  check "tree has both spans" true (contains tree "root" && contains tree "child")

let test_tracer_bounded () =
  let tr = Trace.tracer_create ~capacity:2 () in
  let a = Trace.span_begin ~tracer:tr "a" in
  let b = Trace.span_begin ~tracer:tr "b" in
  let c = Trace.span_begin ~tracer:tr "c" in
  check "within capacity live" true (a <> Trace.null_id && b <> Trace.null_id);
  check "over capacity dropped" true (c = Trace.null_id);
  check_int "dropped counted" 1 (Trace.dropped_spans tr);
  Trace.tracer_reset tr;
  check_int "reset clears" 0 (List.length (Trace.spans ~tracer:tr ()));
  check "usable after reset" true (Trace.span_begin ~tracer:tr "d" <> Trace.null_id)

let test_trace_control_disabled () =
  let tr = Trace.tracer_create () in
  Control.set_enabled false;
  Fun.protect ~finally:(fun () -> Control.set_enabled true) (fun () ->
      check "null id when disabled" true
        (Trace.span_begin ~tracer:tr "x" = Trace.null_id));
  check_int "nothing recorded" 0 (List.length (Trace.spans ~tracer:tr ()))

let test_with_span_clamps_backwards_clock () =
  let r = Registry.create () in
  (* a clock that steps backwards mid-span: start 100, end 50 *)
  let times = ref [ 100.0; 50.0 ] in
  Trace.set_clock (fun () ->
      match !times with
      | [ t ] -> t
      | t :: rest ->
          times := rest;
          t
      | [] -> 0.0);
  Fun.protect ~finally:Trace.reset_clock (fun () ->
      Trace.with_span ~registry:r "clamp" (fun () -> ()));
  let h =
    Registry.histogram ~registry:r ~labels:[ ("span", "clamp") ]
      Trace.wall_metric
  in
  check_int "recorded" 1 (Histogram.count h);
  check "negative duration clamped to zero" true (Histogram.sum h = 0.0)

(* -- exporter round-trips -- *)

let test_escaping_golden () =
  let r = Registry.create () in
  Counter.incr
    (Registry.counter ~registry:r "esc_total"
       ~labels:[ ("l", "sp ace,comma\"quote\\back\nnl\ttab\rcr") ]);
  (* spaces and commas pass through; quote, backslash, newline, tab and
     carriage return are escaped — pinned exactly *)
  check_string "escaping golden"
    "esc_total{l=\"sp ace,comma\\\"quote\\\\back\\nnl\\ttab\\rcr\"} 1\n"
    (Export.snapshot ~registry:r ())

let test_export_write_file () =
  let r = Registry.create () in
  Counter.add (Registry.counter ~registry:r "f_total") 2;
  let path = Filename.temp_file "qkd_obs" ".prom" in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () ->
      Export.write_file ~registry:r path;
      let ic = open_in path in
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      check_string "file holds the snapshot" "f_total 2\n" s)

(* -- engine failure paths -- *)

let run_isolated ?(seed = 2003L) ?(tamper = false) ?config ~pulses () =
  let config = Option.value config ~default:Engine.default_config in
  let r = Registry.create () in
  let result =
    Registry.with_registry r (fun () ->
        let engine = Engine.create ~seed config in
        Engine.run_round ~tamper engine ~pulses)
  in
  (r, result)

let test_engine_tamper_counted () =
  let r, result = run_isolated ~tamper:true ~pulses:100_000 () in
  (match result with
  | Error Engine.Auth_tampered -> ()
  | Ok _ -> Alcotest.fail "tampered round accepted"
  | Error f -> Alcotest.failf "unexpected failure: %a" Engine.pp_failure f);
  check_int "rounds total" 1 (counter_value r "engine_rounds_total");
  check_int "failed{auth_tampered}" 1
    (counter_value r "engine_rounds_failed"
       ~labels:[ ("reason", "auth_tampered") ]);
  check_int "failed{auth_exhausted} untouched" 0
    (counter_value r "engine_rounds_failed"
       ~labels:[ ("reason", "auth_exhausted") ])

let test_engine_exhaustion_counted () =
  let config =
    { Engine.default_config with Engine.auth_prepositioned_bits = 32 }
  in
  let r, result = run_isolated ~config ~pulses:100_000 () in
  (match result with
  | Error Engine.Auth_exhausted -> ()
  | Ok _ -> Alcotest.fail "round succeeded on an empty auth pool"
  | Error f -> Alcotest.failf "unexpected failure: %a" Engine.pp_failure f);
  check_int "failed{auth_exhausted}" 1
    (counter_value r "engine_rounds_failed"
       ~labels:[ ("reason", "auth_exhausted") ])

let test_engine_failure_does_not_leak () =
  let r, result = run_isolated ~tamper:true ~pulses:100_000 () in
  check "round failed" true (Result.is_error result);
  (* quality/throughput series are success-only *)
  check_int "qber histogram empty" 0 (hist_count r "protocol_qber_ratio");
  check_int "sifted bps empty" 0 (hist_count r "protocol_sifted_bps");
  check_int "distilled bps empty" 0 (hist_count r "protocol_distilled_bps");
  check_int "distilled counter zero" 0
    (counter_value r "protocol_distilled_bits_total");
  check_int "sim round span empty" 0
    (hist_count r ~labels:[ ("span", "engine_round") ] Trace.sim_metric);
  (* ...while the layers below still report what physically happened *)
  check "photonics still counted" true
    (counter_value r "photonics_pulses_total" = 100_000)

let test_engine_success_observes () =
  let r, result = run_isolated ~pulses:200_000 () in
  (match result with
  | Ok _ -> ()
  | Error f -> Alcotest.failf "round failed: %a" Engine.pp_failure f);
  check_int "qber histogram" 1 (hist_count r "protocol_qber_ratio");
  check_int "distilled bps" 1 (hist_count r "protocol_distilled_bps");
  check "sifted counted" true (counter_value r "protocol_sifted_bits_total" > 0);
  check "cascade ran" true (counter_value r "cascade_reconciliations_total" = 1);
  check "pa ran" true (counter_value r "pa_amplifications_total" = 1);
  check_int "no failures" 0
    (counter_value r "engine_rounds_failed"
       ~labels:[ ("reason", "auth_tampered") ])

(* -- golden snapshot -- *)

let golden_file = "golden_round_metrics.expected"

(* Wall-clock spans are the one nondeterministic series; everything
   else in a seeded round is reproducible and pinned. *)
let filtered_snapshot r =
  Export.snapshot ~registry:r ()
  |> String.split_on_char '\n'
  |> List.filter (fun l ->
         not (String.length l >= String.length Trace.wall_metric
             && String.sub l 0 (String.length Trace.wall_metric)
                = Trace.wall_metric))
  |> String.concat "\n"

let test_golden_snapshot () =
  let r, result = run_isolated ~seed:2003L ~pulses:500_000 () in
  (match result with
  | Ok _ -> ()
  | Error f -> Alcotest.failf "golden round failed: %a" Engine.pp_failure f);
  let actual = filtered_snapshot r in
  match Sys.getenv_opt "QKD_OBS_GOLDEN_WRITE" with
  | Some path ->
      let oc = open_out path in
      output_string oc actual;
      close_out oc
  | None ->
      let ic = open_in golden_file in
      let expected = really_input_string ic (in_channel_length ic) in
      close_in ic;
      if not (String.equal expected actual) then
        Alcotest.failf
          "registry snapshot drifted from %s (metric renamed/dropped?).\n\
           -- expected --\n%s\n-- actual --\n%s"
          golden_file expected actual

(* -- histogram quantiles and exemplars -- *)

module Exemplar = Qkd_obs.Exemplar

let close msg a b = check msg true (Float.abs (a -. b) < 1e-9)

let test_histogram_quantile () =
  let h = Histogram.make ~buckets:[| 1.0; 2.0; 4.0 |] in
  check "empty is nan" true (Float.is_nan (Histogram.quantile h 0.5));
  for _ = 1 to 4 do
    Histogram.observe h 0.5
  done;
  (* all mass in the first bucket: interpolate from 0 *)
  close "median in first bucket" 0.5 (Histogram.quantile h 0.5);
  close "q=0.25" 0.25 (Histogram.quantile h 0.25);
  check "nan q is nan" true (Float.is_nan (Histogram.quantile h Float.nan));
  Histogram.observe h 100.0;
  (* rank lands in the +Inf overflow: clamp to the last finite bound *)
  close "overflow clamps" 4.0 (Histogram.quantile h 1.0);
  let h2 = Histogram.make ~buckets:[| 1.0; 2.0; 4.0 |] in
  Histogram.observe h2 1.5;
  Histogram.observe h2 1.5;
  Histogram.observe h2 3.0;
  Histogram.observe h2 3.0;
  close "median at bucket boundary" 2.0 (Histogram.quantile h2 0.5);
  close "clamped q>1" 4.0 (Histogram.quantile h2 2.0)

let test_histogram_exemplar () =
  let h = Histogram.make ~buckets:[| 1.0; 2.0 |] in
  check "unset exemplar" true (Histogram.exemplar h 0 = None);
  Histogram.observe_ex h ~event_id:7 ~trace_id:3 0.5;
  (match Histogram.exemplar h 0 with
  | Some e ->
      check_int "event id" 7 e.Exemplar.event_id;
      check_int "trace id" 3 e.Exemplar.trace_id;
      close "value" 0.5 e.Exemplar.value
  | None -> Alcotest.fail "exemplar not recorded");
  check "other bucket untouched" true (Histogram.exemplar h 1 = None);
  check "out of range" true (Histogram.exemplar h 99 = None);
  (* later witness replaces the earlier one in the same bucket *)
  Histogram.observe_ex h ~event_id:9 0.8;
  (match Histogram.exemplar h 0 with
  | Some e -> check_int "replaced" 9 e.Exemplar.event_id
  | None -> Alcotest.fail "exemplar lost");
  check_int "counts track observe_ex" 2 (Histogram.count h)

let test_export_exemplar_suffix () =
  let r = Registry.create () in
  let h =
    Registry.histogram ~registry:r "latency" ~buckets:[| 1.0; 2.0 |]
      ~help:"h"
  in
  Histogram.observe_ex h ~event_id:7 ~trace_id:3 0.5;
  let s = Export.snapshot ~registry:r () in
  check "bucket line carries exemplar" true
    (contains s "# {event_id=\"7\",trace_id=\"3\"}");
  let r2 = Registry.create () in
  let h2 =
    Registry.histogram ~registry:r2 "latency" ~buckets:[| 1.0; 2.0 |]
      ~help:"h"
  in
  Histogram.observe h2 0.5;
  check "plain histogram exports without exemplars" false
    (contains (Export.snapshot ~registry:r2 ()) "# {")

let test_spans_dropped_counter () =
  let r = Registry.create () in
  Registry.with_registry r (fun () ->
      let tracer = Trace.tracer_create ~capacity:1 () in
      Trace.with_tracer tracer (fun () ->
          ignore (Trace.span_begin "a");
          ignore (Trace.span_begin "b");
          ignore (Trace.span_begin "c")));
  check_int "dropped spans exported" 2
    (counter_value r "trace_spans_dropped_total")

(* Drive a rule through Fired inside [r]; returns the alert engine. *)
let fire_alert_in () =
  let set = Series.create_set () in
  let v = ref 0.0 in
  ignore (Series.watch set "g" (fun () -> !v));
  let e = Alert.create set in
  Alert.add_rule e
    {
      Alert.name = "hot";
      severity = Alert.Warning;
      message = "too hot";
      for_s = 0.0;
      kind =
        Alert.Threshold
          { series = "g"; window_s = 1.0; condition = Alert.Above 10.0 };
    };
  let step now value =
    v := value;
    Series.tick set ~now;
    Alert.evaluate e ~now
  in
  step 0.0 5.0;
  step 1.0 20.0;
  step 2.0 20.0;
  e

let test_alert_fired_counter () =
  let r = Registry.create () in
  let e = Registry.with_registry r (fun () -> fire_alert_in ()) in
  check "rule is firing" true (Alert.is_firing e "hot");
  check_int "labelled fired counter" 1
    (counter_value r "alert_fired_total" ~labels:[ ("rule", "hot") ])

let test_alert_fired_hook () =
  let r = Registry.create () in
  let seen = ref [] in
  Alert.set_fired_hook (fun ev -> seen := ev.Alert.rule :: !seen);
  Fun.protect ~finally:Alert.clear_fired_hook (fun () ->
      ignore (Registry.with_registry r (fun () -> fire_alert_in ())));
  check "hook saw the transition" true (!seen = [ "hot" ]);
  (* a raising hook must not leak into the evaluation path *)
  let r2 = Registry.create () in
  Alert.set_fired_hook (fun _ -> failwith "boom");
  let e =
    Fun.protect ~finally:Alert.clear_fired_hook (fun () ->
        Registry.with_registry r2 (fun () -> fire_alert_in ()))
  in
  check "fired despite raising hook" true (Alert.is_firing e "hot")

(* -- flight recorder -- *)

module Recorder = Qkd_obs.Recorder
module Event = Qkd_obs.Event
module Query = Qkd_obs.Query

let mk_event ?(at_s = 0.0) ?(verdict = "ok") ?stage_s ?(bits = 0)
    ?(labels = []) ~source ~id () =
  Event.make ?stage_s ~at_s ~verdict ~bits ~labels ~source ~id ()

let test_recorder_merge_order () =
  let r = Recorder.create ~capacity:8 () in
  Recorder.emit r ~lane:Recorder.lane_engine
    (mk_event ~source:Event.Round ~id:1 ());
  Recorder.emit r ~lane:Recorder.lane_kms (mk_event ~source:Event.Kms ~id:2 ());
  Recorder.emit r ~lane:Recorder.lane_engine
    (mk_event ~source:Event.Round ~id:3 ());
  let evs = Recorder.events r in
  check_int "all retained" 3 (List.length evs);
  check "merged in emission order" true
    (List.map (fun (e : Event.t) -> e.Event.id) evs = [ 1; 2; 3 ]);
  let seqs = List.map (fun (e : Event.t) -> e.Event.seq) evs in
  check "seq strictly increasing" true
    (List.sort_uniq compare seqs = seqs);
  check_int "emitted" 3 (Recorder.emitted r);
  check_int "dropped" 0 (Recorder.dropped r);
  Recorder.reset r;
  check_int "reset empties" 0 (List.length (Recorder.events r))

let test_recorder_drop_oldest () =
  let r = Recorder.create ~capacity:2 () in
  for i = 1 to 5 do
    Recorder.emit r ~lane:Recorder.lane_net
      (mk_event ~source:Event.Sched ~id:i ())
  done;
  check_int "retained bounded" 2 (Recorder.retained r);
  check_int "dropped" 3 (Recorder.dropped r);
  check "newest survive" true
    (List.map
       (fun (e : Event.t) -> e.Event.id)
       (Recorder.lane_events r Recorder.lane_net)
    = [ 4; 5 ])

let test_recorder_pause () =
  let r = Recorder.create () in
  Recorder.with_recorder r (fun () ->
      Recorder.set_recording false;
      Recorder.record ~lane:Recorder.lane_esp
        (mk_event ~source:Event.Esp ~id:1 ());
      Recorder.set_recording true;
      Recorder.record ~lane:Recorder.lane_esp
        (mk_event ~source:Event.Esp ~id:2 ()));
  check "paused emission dropped" true
    (List.map
       (fun (e : Event.t) -> e.Event.id)
       (Recorder.lane_events r Recorder.lane_esp)
    = [ 2 ])

let test_recorder_snapshot_window () =
  let r = Recorder.create () in
  Recorder.emit r ~lane:Recorder.lane_engine
    (mk_event ~at_s:5.0 ~source:Event.Round ~id:1 ());
  Recorder.emit r ~lane:Recorder.lane_engine
    (mk_event ~at_s:50.0 ~source:Event.Round ~id:2 ());
  Recorder.emit r ~lane:Recorder.lane_esp
    (mk_event ~at_s:0.0 ~source:Event.Esp ~id:3 ());
  let d = Recorder.snapshot ~window_s:10.0 ~now:55.0 ~reason:"test" r in
  check "window keeps recent and clockless" true
    (List.sort compare (List.map (fun (e : Event.t) -> e.Event.id) d.Recorder.events)
    = [ 2; 3 ]);
  check_string "reason" "test" d.Recorder.reason;
  let all = Recorder.snapshot r in
  check_int "no window keeps everything" 3 (List.length all.Recorder.events)

let test_dump_roundtrip_and_crc () =
  let r = Recorder.create () in
  Recorder.emit r ~lane:Recorder.lane_kms
    (mk_event ~at_s:1.0 ~verdict:"shed" ~bits:128 ~source:Event.Kms ~id:9 ());
  let d = Recorder.snapshot ~reason:"rt" r in
  let b = Recorder.to_bytes d in
  check "round trip preserves dump" true
    (compare (Recorder.of_bytes b) d = 0);
  (* flip one payload byte: the CRC must catch it *)
  let corrupt = Bytes.copy b in
  let i = Bytes.length corrupt - 1 in
  Bytes.set corrupt i (Char.chr (Char.code (Bytes.get corrupt i) lxor 0xFF));
  check "corrupted payload rejected" true
    (match Recorder.of_bytes corrupt with
    | exception Invalid_argument _ -> true
    | _ -> false);
  check "truncated rejected" true
    (match Recorder.of_bytes (Bytes.sub b 0 8) with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_fingerprint_canonicalizes_wall_clock () =
  let dump_with ~stage ~verdict =
    let r = Recorder.create () in
    Recorder.emit r ~lane:Recorder.lane_engine
      (mk_event ~stage_s:[| stage |] ~verdict ~source:Event.Round ~id:1 ());
    Recorder.snapshot ~reason:"fp" r
  in
  check "stage latencies are canonicalized away" true
    (Recorder.fingerprint (dump_with ~stage:0.1 ~verdict:"ok")
    = Recorder.fingerprint (dump_with ~stage:0.9 ~verdict:"ok"));
  check "semantic fields are not" false
    (Recorder.fingerprint (dump_with ~stage:0.1 ~verdict:"ok")
    = Recorder.fingerprint (dump_with ~stage:0.1 ~verdict:"bad"))

let test_arm_alerts_writes_dump () =
  let dir = Filename.temp_file "qkd_bbox" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let path = Recorder.dump_path ~dir "hot" in
  let r = Recorder.create () in
  let reg = Registry.create () in
  Recorder.with_recorder r (fun () ->
      Recorder.record ~lane:Recorder.lane_engine
        (mk_event ~at_s:1.5 ~source:Event.Round ~id:1 ());
      Recorder.arm_alerts ~dir ();
      Fun.protect ~finally:Recorder.disarm_alerts (fun () ->
          ignore (Registry.with_registry reg (fun () -> fire_alert_in ()))));
  check "dump written on Fired" true (Sys.file_exists path);
  let d = Recorder.load path in
  check_string "reason names the rule" "alert:hot" d.Recorder.reason;
  check_int "window holds the event" 1 (List.length d.Recorder.events);
  Sys.remove path;
  Unix.rmdir dir

let prop_dump_crc_roundtrip =
  QCheck.Test.make ~name:"dump survives to_bytes/of_bytes" ~count:100
    QCheck.(
      list (triple (int_range 0 1000) (int_range 0 100_000) printable_string))
    (fun specs ->
      let r = Recorder.create ~capacity:(max 1 (List.length specs)) () in
      List.iter
        (fun (id, bits, verdict) ->
          Recorder.emit r ~lane:Recorder.lane_scenario
            (mk_event ~source:Event.Mark ~id ~bits ~verdict
               ~labels:[ ("v", verdict) ]
               ()))
        specs;
      let d = Recorder.snapshot ~reason:"prop" r in
      compare (Recorder.of_bytes (Recorder.to_bytes d)) d = 0)

(* -- post-mortem queries -- *)

let test_query_parse_filter () =
  check "source" true (Query.parse_filter "source=round" = Ok (Query.Source Event.Round));
  check "tenant" true (Query.parse_filter "tenant=t1" = Ok (Query.Tenant "t1"));
  check "verdict" true (Query.parse_filter "verdict=ok" = Ok (Query.Verdict "ok"));
  check "since" true (Query.parse_filter "since=5" = Ok (Query.Since 5.0));
  check "label fallthrough" true
    (Query.parse_filter "stage=ec" = Ok (Query.Label ("stage", "ec")));
  check "missing =" true
    (match Query.parse_filter "qos" with Error _ -> true | Ok _ -> false);
  check "bad source" true
    (match Query.parse_filter "source=warp" with Error _ -> true | Ok _ -> false)

let query_fixture () =
  [
    mk_event ~at_s:1.0 ~stage_s:[| 0.5 |] ~source:Event.Round ~id:1 ();
    mk_event ~at_s:2.0 ~stage_s:[| 1.5 |] ~source:Event.Round ~id:2 ();
    mk_event ~at_s:3.0 ~verdict:"shed" ~source:Event.Kms ~id:3
      ~labels:[ ("stage", "admit") ] ();
    mk_event ~at_s:9.0 ~stage_s:[| 2.5 |] ~source:Event.Round ~id:4 ();
  ]

let test_query_apply_and_group () =
  let evs = query_fixture () in
  let only_rounds = Query.apply [ Query.Source Event.Round ] evs in
  check_int "source filter" 3 (List.length only_rounds);
  check_int "conjunction" 1
    (List.length (Query.apply [ Query.Source Event.Round; Query.Since 2.0; Query.Until 3.0 ] evs));
  check_int "label filter" 1
    (List.length (Query.apply [ Query.Label ("stage", "admit") ] evs));
  (match Query.group_by ~by:"source" evs with
  | [ ("round", rs); ("kms", ks) ] ->
      check_int "rounds grouped" 3 (List.length rs);
      check_int "kms grouped" 1 (List.length ks)
  | gs -> Alcotest.failf "unexpected grouping (%d groups)" (List.length gs));
  match Query.summarize ~field:Query.Latency ~by:"source" evs with
  | [ s_round; s_kms ] ->
      check_int "round count" 3 s_round.Query.count;
      check_int "round samples" 3 s_round.Query.samples;
      check "p50 within sample range" true
        (s_round.Query.p50 >= 0.5 && s_round.Query.p50 <= 2.5);
      check_int "kms has no latency samples" 0 s_kms.Query.samples;
      check "empty percentiles are nan" true (Float.is_nan s_kms.Query.p50)
  | ss -> Alcotest.failf "unexpected summaries (%d)" (List.length ss)

(* -- pipelined stream integrity (PR 10 stress property) --

   At every pipeline depth the merged stream's Round events must be
   exactly rounds 1..N in commit order — nothing lost, duplicated or
   reordered — and carry the same verdict/qber/bits as the serial
   engine (the recorder must not perturb the seeded run). *)

let round_digest depth ~rounds ~pulses =
  let r = Recorder.create () in
  let reg = Registry.create () in
  Registry.with_registry reg (fun () ->
      Recorder.with_recorder r (fun () ->
          let engine = Engine.create ~seed:2003L Engine.default_config in
          Engine.run_rounds ~pipeline_depth:depth engine ~rounds ~pulses
            (fun _ -> ())));
  List.map
    (fun (e : Event.t) -> (e.Event.id, e.Event.verdict, e.Event.qber, e.Event.bits))
    (Recorder.lane_events r Recorder.lane_engine)

let stress_rounds = 4
let stress_pulses = 10_000
let serial_round_digest =
  lazy (round_digest 1 ~rounds:stress_rounds ~pulses:stress_pulses)

let prop_pipeline_round_events_intact =
  QCheck.Test.make ~name:"round events complete and in order at any depth"
    ~count:6
    QCheck.(int_range 1 4)
    (fun depth ->
      let d = round_digest depth ~rounds:stress_rounds ~pulses:stress_pulses in
      List.map (fun (id, _, _, _) -> id) d
      = List.init stress_rounds (fun i -> i + 1)
      && compare d (Lazy.force serial_round_digest) = 0)

let () =
  Alcotest.run "qkd_obs"
    [
      ( "primitives",
        [
          Alcotest.test_case "counter" `Quick test_counter_basics;
          Alcotest.test_case "gauge" `Quick test_gauge_basics;
          Alcotest.test_case "histogram placement" `Quick test_histogram_placement;
          Alcotest.test_case "bad buckets" `Quick test_histogram_bad_buckets;
          qcheck prop_counter_adds_commute;
          qcheck prop_histogram_buckets_sum_to_count;
          qcheck prop_metrics_domain_safe;
        ] );
      ( "series",
        [
          Alcotest.test_case "ring window stats" `Quick test_series_ring;
          Alcotest.test_case "ratio and wilson" `Quick test_series_ratio;
          Alcotest.test_case "labelled name" `Quick test_labelled_name;
          Alcotest.test_case "set tick sampling" `Quick test_series_set_tick;
          Alcotest.test_case "control gates push" `Quick
            test_series_control_gated;
          qcheck prop_series_eviction;
        ] );
      ( "alerts",
        [
          Alcotest.test_case "threshold lifecycle" `Quick
            test_alert_threshold_lifecycle;
          Alcotest.test_case "duplicate name rejected" `Quick
            test_alert_duplicate_name_rejected;
          Alcotest.test_case "undecidable keeps state" `Quick
            test_alert_undecidable_keeps_state;
          Alcotest.test_case "burn rate slo" `Quick test_alert_burn_rate_slo;
        ] );
      ( "registry",
        [
          Alcotest.test_case "identity" `Quick test_registry_identity;
          Alcotest.test_case "validation" `Quick test_registry_validation;
          Alcotest.test_case "with_registry restores" `Quick
            test_registry_with_registry_restores;
          Alcotest.test_case "control switch" `Quick test_control_disables_mutation;
          qcheck prop_counter_registry_order_independent;
        ] );
      ( "tracing",
        [
          Alcotest.test_case "with_span" `Quick test_trace_with_span;
          Alcotest.test_case "record_sim" `Quick test_trace_record_sim;
          Alcotest.test_case "causal spans" `Quick test_causal_spans;
          Alcotest.test_case "bounded tracer" `Quick test_tracer_bounded;
          Alcotest.test_case "control disables spans" `Quick
            test_trace_control_disabled;
          Alcotest.test_case "backwards clock clamps" `Quick
            test_with_span_clamps_backwards_clock;
        ] );
      ( "export",
        [
          Alcotest.test_case "snapshot format" `Quick test_snapshot_format;
          Alcotest.test_case "label escaping" `Quick test_snapshot_label_escaping;
          Alcotest.test_case "escaping golden" `Quick test_escaping_golden;
          Alcotest.test_case "write_file" `Quick test_export_write_file;
          Alcotest.test_case "dump covers series" `Quick
            test_dump_mentions_every_series;
          qcheck prop_snapshot_deterministic;
          qcheck prop_snapshot_sorted;
        ] );
      ( "engine failure paths",
        [
          Alcotest.test_case "tamper counted" `Slow test_engine_tamper_counted;
          Alcotest.test_case "exhaustion counted" `Quick
            test_engine_exhaustion_counted;
          Alcotest.test_case "failure does not leak" `Slow
            test_engine_failure_does_not_leak;
          Alcotest.test_case "success observes" `Slow test_engine_success_observes;
        ] );
      ( "quantiles and exemplars",
        [
          Alcotest.test_case "bucket quantile" `Quick test_histogram_quantile;
          Alcotest.test_case "exemplar witnesses" `Quick test_histogram_exemplar;
          Alcotest.test_case "export exemplar suffix" `Quick
            test_export_exemplar_suffix;
        ] );
      ( "alert counters and hook",
        [
          Alcotest.test_case "spans dropped counter" `Quick
            test_spans_dropped_counter;
          Alcotest.test_case "fired counter" `Quick test_alert_fired_counter;
          Alcotest.test_case "fired hook" `Quick test_alert_fired_hook;
        ] );
      ( "flight recorder",
        [
          Alcotest.test_case "merge order" `Quick test_recorder_merge_order;
          Alcotest.test_case "drop oldest" `Quick test_recorder_drop_oldest;
          Alcotest.test_case "pause" `Quick test_recorder_pause;
          Alcotest.test_case "snapshot window" `Quick
            test_recorder_snapshot_window;
          Alcotest.test_case "dump round trip and crc" `Quick
            test_dump_roundtrip_and_crc;
          Alcotest.test_case "fingerprint canonical" `Quick
            test_fingerprint_canonicalizes_wall_clock;
          Alcotest.test_case "arm alerts dumps" `Quick
            test_arm_alerts_writes_dump;
          qcheck prop_dump_crc_roundtrip;
        ] );
      ( "queries",
        [
          Alcotest.test_case "parse filter" `Quick test_query_parse_filter;
          Alcotest.test_case "apply group summarize" `Quick
            test_query_apply_and_group;
        ] );
      ( "pipeline stream integrity",
        [ qcheck prop_pipeline_round_events_intact ] );
      ( "golden",
        [ Alcotest.test_case "golden" `Slow test_golden_snapshot ] );
    ]
